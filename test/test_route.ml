(* Tests for the routing substrate: heap, grid, router, metrics. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let closed_lib = Pdk.Libgen.generate (Pdk.Tech.default Pdk.Cell_arch.Closed_m1)

let placed_design ?(n = 250) ?(seed = 9) ?(utilization = 0.7) lib =
  let d =
    Netlist.Generator.generate lib
      (Netlist.Generator.default_config ~n_instances:n ~seed)
      ~name:"t"
  in
  let p = Place.Placement.create d ~utilization in
  Place.Global.place p;
  p

(* --- Heap --- *)

let test_heap_basic () =
  let h = Route.Heap.create () in
  checkb "empty" true (Route.Heap.is_empty h);
  Route.Heap.push h ~prio:5 ~value:50;
  Route.Heap.push h ~prio:1 ~value:10;
  Route.Heap.push h ~prio:3 ~value:30;
  check "size" 3 (Route.Heap.size h);
  let p1, v1 = Route.Heap.pop h in
  check "first prio" 1 p1;
  check "first value" 10 v1;
  let p2, _ = Route.Heap.pop h in
  check "second prio" 3 p2;
  let p3, _ = Route.Heap.pop h in
  check "third prio" 5 p3;
  checkb "empty again" true (Route.Heap.is_empty h);
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop: empty")
    (fun () -> ignore (Route.Heap.pop h))

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap pops in priority order" ~count:200
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 10000))
    (fun prios ->
      let h = Route.Heap.create ~capacity:4 () in
      List.iteri (fun i p -> Route.Heap.push h ~prio:p ~value:i) prios;
      let out = ref [] in
      while not (Route.Heap.is_empty h) do
        out := fst (Route.Heap.pop h) :: !out
      done;
      List.rev !out = List.sort Int.compare prios)

(* --- Bucket queue --- *)

let test_bqueue_basic () =
  let q = Route.Bqueue.create ~capacity:4 () in
  checkb "empty" true (Route.Bqueue.is_empty q);
  Route.Bqueue.push q ~prio:500 ~value:1;
  Route.Bqueue.push q ~prio:497 ~value:2;
  Route.Bqueue.push q ~prio:500 ~value:3;
  Route.Bqueue.push q ~prio:1200 ~value:4;
  check "size" 4 (Route.Bqueue.size q);
  let v = Route.Bqueue.pop q in
  check "min prio" 497 (Route.Bqueue.last_prio q);
  check "min value" 2 v;
  check "tie pops fifo" 1 (Route.Bqueue.pop q);
  check "tie pops fifo 2" 3 (Route.Bqueue.pop q);
  (* a push far below the latched origin (cursor already advanced) *)
  Route.Bqueue.push q ~prio:30 ~value:5;
  let v = Route.Bqueue.pop q in
  check "below-origin prio" 30 (Route.Bqueue.last_prio q);
  check "below-origin value" 5 v;
  ignore (Route.Bqueue.pop q);
  check "last prio" 1200 (Route.Bqueue.last_prio q);
  checkb "drained" true (Route.Bqueue.is_empty q);
  check "pushes survive pops" 5 (Route.Bqueue.pushes q);
  Route.Bqueue.clear q;
  Route.Bqueue.push q ~prio:7 ~value:9;
  ignore (Route.Bqueue.pop q);
  check "reusable after clear" 7 (Route.Bqueue.last_prio q);
  check "pushes survive clear" 6 (Route.Bqueue.pushes q);
  Alcotest.check_raises "pop empty" (Invalid_argument "Bqueue.pop: empty")
    (fun () -> ignore (Route.Bqueue.pop q))

(* under any interleaving of pushes and pops, the bucket queue returns
   the same priority sequence as the binary heap (the reference) *)
let prop_bqueue_matches_heap =
  QCheck2.Test.make ~name:"bucket queue priorities match heap" ~count:300
    QCheck2.Gen.(
      list_size (int_range 1 300) (pair (int_range 0 2500) (int_range 0 3)))
    (fun ops ->
      let q = Route.Bqueue.create ~capacity:16 () in
      let h = Route.Heap.create ~capacity:4 () in
      let ok = ref true in
      List.iter
        (fun (prio, k) ->
          if k = 0 && not (Route.Bqueue.is_empty q) then begin
            ignore (Route.Bqueue.pop q);
            if Route.Bqueue.last_prio q <> fst (Route.Heap.pop h) then
              ok := false
          end
          else begin
            Route.Bqueue.push q ~prio ~value:prio;
            Route.Heap.push h ~prio ~value:prio
          end)
        ops;
      while not (Route.Bqueue.is_empty q) do
        ignore (Route.Bqueue.pop q);
        if Route.Bqueue.last_prio q <> fst (Route.Heap.pop h) then ok := false
      done;
      !ok && Route.Heap.is_empty h)

(* --- Stampset --- *)

let test_stampset () =
  let s = Route.Stampset.create 100 in
  check "empty" 0 (Route.Stampset.cardinal s);
  Route.Stampset.add s 7;
  Route.Stampset.add s 3;
  Route.Stampset.add s 7;
  Route.Stampset.add s 99;
  check "dup ignored" 3 (Route.Stampset.cardinal s);
  checkb "mem" true (Route.Stampset.mem s 3);
  checkb "not mem" false (Route.Stampset.mem s 4);
  let order = ref [] in
  Route.Stampset.iter s (fun x -> order := x :: !order);
  Alcotest.(check (list int)) "insertion order" [ 7; 3; 99 ] (List.rev !order);
  Route.Stampset.clear s;
  check "cleared" 0 (Route.Stampset.cardinal s);
  checkb "stale stamp invisible" false (Route.Stampset.mem s 7);
  Route.Stampset.add s 3;
  check "reusable" 1 (Route.Stampset.cardinal s)

(* --- Grid --- *)

let test_grid_geometry () =
  let p = placed_design closed_lib in
  let g = Route.Grid.of_placement p in
  checkb "nx positive" true (g.Route.Grid.nx > 0);
  check "pitch" 36 g.Route.Grid.pitch;
  (* node index roundtrips *)
  let n = Route.Grid.node g ~layer:3 ~i:5 ~j:7 in
  check "layer" 3 (Route.Grid.layer_of_node g n);
  check "i" 5 (Route.Grid.i_of_node g n);
  check "j" 7 (Route.Grid.j_of_node g n);
  check "track x" (5 * 36 + 18) (Route.Grid.track_x g 5);
  check "x to track" 5 (Route.Grid.x_to_track g (5 * 36 + 18));
  checkb "vertical M1" true (Route.Grid.is_vertical_layer 1);
  checkb "horizontal M2" false (Route.Grid.is_vertical_layer 2);
  checkb "vertical M5" true (Route.Grid.is_vertical_layer 5)

let test_grid_edges () =
  let p = placed_design closed_lib in
  let g = Route.Grid.of_placement p in
  (* vertical layer: wire edge goes up a row of tracks *)
  let n = Route.Grid.node g ~layer:1 ~i:0 ~j:0 in
  checkb "has wire edge" true (Route.Grid.has_wire_edge g n);
  check "wire dest is j+1" (Route.Grid.node g ~layer:1 ~i:0 ~j:1)
    (Route.Grid.wire_dest g n);
  (* horizontal layer *)
  let n2 = Route.Grid.node g ~layer:2 ~i:0 ~j:0 in
  check "wire dest is i+1" (Route.Grid.node g ~layer:2 ~i:1 ~j:0)
    (Route.Grid.wire_dest g n2);
  (* top layer has no via up *)
  let top = Route.Grid.node g ~layer:Route.Grid.num_layers ~i:0 ~j:0 in
  checkb "no via from top" false (Route.Grid.has_via_edge g top);
  checkb "via from M1" true (Route.Grid.has_via_edge g n);
  check "via dest" (Route.Grid.node g ~layer:2 ~i:0 ~j:0) (Route.Grid.via_dest g n)

let test_grid_pin_access_nonempty () =
  let p = placed_design closed_lib in
  let g = Route.Grid.of_placement p in
  Array.iteri
    (fun i (inst : Netlist.Design.instance) ->
      List.iteri
        (fun k _ ->
          let access = Route.Grid.pin_access g { Netlist.Design.inst = i; pin = k } in
          checkb "access nonempty" true (access <> []))
        inst.master.Pdk.Stdcell.pins)
    p.design.Netlist.Design.instances

let test_grid_pin_blockage_ownership () =
  let p = placed_design closed_lib in
  let g = Route.Grid.of_placement p in
  (* every ClosedM1 pin's access nodes carry the pin's net as owner on the
     covered edges (or blocked when overlapping another pin) *)
  let some_checked = ref false in
  Array.iteri
    (fun i (inst : Netlist.Design.instance) ->
      List.iteri
        (fun k _ ->
          let netid = inst.pin_nets.(k) in
          if netid >= 0 then begin
            List.iter
              (fun node ->
                if Route.Grid.has_wire_edge g node then begin
                  let owner = g.Route.Grid.wire_owner.(node) in
                  if owner = netid then some_checked := true;
                  checkb "owner is net, blocked, or free boundary" true
                    (owner = netid || owner = Route.Grid.blocked
                     || owner = Route.Grid.free)
                end)
              (Route.Grid.pin_access g { Netlist.Design.inst = i; pin = k })
          end)
        inst.master.Pdk.Stdcell.pins)
    p.design.Netlist.Design.instances;
  checkb "at least one owned edge seen" true !some_checked

let test_conv12_blocks_inter_row_m1 () =
  let lib = Pdk.Libgen.generate (Pdk.Tech.default Pdk.Cell_arch.Conventional12) in
  let p = placed_design lib in
  let g = Route.Grid.of_placement p in
  let rh = p.Place.Placement.tech.Pdk.Tech.row_height in
  (* every M1 wire edge crossing a row boundary must be blocked *)
  let crossing = ref 0 and blocked = ref 0 in
  for i = 0 to g.Route.Grid.nx - 1 do
    for j = 0 to g.Route.Grid.ny - 2 do
      let ya = Route.Grid.track_y g j and yb = Route.Grid.track_y g (j + 1) in
      let crosses = ya / rh <> yb / rh in
      if crosses then begin
        incr crossing;
        let n = Route.Grid.node g ~layer:1 ~i ~j in
        if g.Route.Grid.wire_owner.(n) = Route.Grid.blocked then incr blocked
      end
    done
  done;
  checkb "has crossings" true (!crossing > 0);
  check "all crossings blocked" !crossing !blocked

let test_m2_power_rails_blocked () =
  (* 7.5-track architectures lose the M2 track nearest each row boundary
     to the power rails *)
  let p = placed_design closed_lib in
  let g = Route.Grid.of_placement p in
  let rh = p.Place.Placement.tech.Pdk.Tech.row_height in
  let blocked_rows = ref 0 in
  for r = 1 to p.Place.Placement.num_rows - 1 do
    let y = r * rh in
    (* find the nearest M2 track and check it is blocked *)
    let j = Route.Grid.y_to_track g y in
    let j =
      if
        j + 1 < g.Route.Grid.ny
        && abs (Route.Grid.track_y g (j + 1) - y) < abs (Route.Grid.track_y g j - y)
      then j + 1
      else j
    in
    let n = Route.Grid.node g ~layer:2 ~i:(g.Route.Grid.nx / 2) ~j in
    if g.Route.Grid.wire_owner.(n) = Route.Grid.blocked then incr blocked_rows
  done;
  check "rails on every row boundary" (p.Place.Placement.num_rows - 1) !blocked_rows

let test_pdn_stripes_toggle () =
  let p = placed_design closed_lib in
  let with_pdn = Route.Grid.of_placement ~pdn_stripes:true p in
  let without = Route.Grid.of_placement ~pdn_stripes:false p in
  let count g =
    Array.fold_left
      (fun acc o -> if o = Route.Grid.blocked then acc + 1 else acc)
      0 g.Route.Grid.wire_owner
  in
  checkb "pdn adds blockage" true (count with_pdn > count without)

let test_reduced_layer_stack () =
  let p = placed_design closed_lib in
  let g = Route.Grid.of_placement ~layers:4 p in
  check "nl" 4 g.Route.Grid.nl;
  let top = Route.Grid.node g ~layer:4 ~i:0 ~j:0 in
  checkb "no via above M4" false (Route.Grid.has_via_edge g top);
  Alcotest.check_raises "rejects 7 layers"
    (Invalid_argument "Grid.of_placement: layers must be in 2..6") (fun () ->
      ignore (Route.Grid.of_placement ~layers:7 p))

let test_route_on_four_layers () =
  let p = placed_design ~n:150 ~utilization:0.6 closed_lib in
  let r =
    Route.Router.route
      ~config:{ Route.Router.default_config with layers = 4 } p
  in
  check "completes on 4 layers" 0 r.Route.Router.failed_subnets

let test_clear_usage () =
  let p = placed_design closed_lib in
  let r = Route.Router.route p in
  let g = r.Route.Router.grid in
  checkb "some usage" true (Array.exists (fun u -> u > 0) g.Route.Grid.wire_usage);
  Route.Grid.clear_usage g;
  checkb "cleared" true (Array.for_all (fun u -> u = 0) g.Route.Grid.wire_usage)

(* --- Router --- *)

let test_route_completes () =
  let p = placed_design closed_lib in
  let r = Route.Router.route p in
  check "no failures" 0 r.Route.Router.failed_subnets;
  (* every 2+ pin signal net got a route for each MST edge *)
  Array.iter
    (fun (nr : Route.Router.net_route) ->
      Array.iter
        (fun (sn : Route.Router.subnet) -> checkb "routed" true sn.routed)
        nr.subnets)
    r.routes

let test_route_subnet_count () =
  let p = placed_design closed_lib in
  let r = Route.Router.route p in
  Array.iter
    (fun (nr : Route.Router.net_route) ->
      let deg = Netlist.Design.net_degree p.design nr.net_id in
      check "k-1 subnets for k pins" (deg - 1) (Array.length nr.subnets))
    r.routes

let test_route_low_util_no_drvs () =
  let p = placed_design ~utilization:0.6 closed_lib in
  let r = Route.Router.route p in
  let s = Route.Metrics.summarize r in
  check "no drvs at 60%" 0 s.Route.Metrics.drvs

let test_use_dm1_ablation () =
  let p = placed_design closed_lib in
  let r_on = Route.Router.route p in
  let r_off =
    Route.Router.route
      ~config:{ Route.Router.default_config with use_dm1 = false } p
  in
  let s_on = Route.Metrics.summarize r_on in
  let s_off = Route.Metrics.summarize r_off in
  check "no inter-row dM1 when disabled" 0 s_off.Route.Metrics.dm1;
  checkb "dm1 available when enabled" true (s_on.Route.Metrics.dm1 >= 0)

let test_layer_breakdowns () =
  let p = placed_design closed_lib in
  let r = Route.Router.route p in
  let s = Route.Metrics.summarize r in
  let wl = Route.Metrics.per_layer_wl_um r in
  let total = Array.fold_left ( +. ) 0.0 wl in
  Alcotest.(check (float 0.01)) "per-layer sums to RWL" s.Route.Metrics.rwl_um total;
  Alcotest.(check (float 0.01)) "layer 1 is M1 WL" s.Route.Metrics.m1_wl_um wl.(1);
  let vias = Route.Metrics.vias_per_boundary r in
  check "boundary 1 is via12" s.Route.Metrics.via12 vias.(1);
  checkb "index 0 unused" true (wl.(0) = 0.0)

let test_metrics_consistency () =
  let p = placed_design closed_lib in
  let r = Route.Router.route p in
  let s = Route.Metrics.summarize r in
  let lengths = Route.Metrics.net_lengths r in
  let total = Array.fold_left ( + ) 0 lengths in
  Alcotest.(check (float 0.001)) "net lengths sum to RWL"
    s.Route.Metrics.rwl_um
    (float_of_int total /. 1000.0);
  checkb "m1 <= total" true (s.Route.Metrics.m1_wl_um <= s.Route.Metrics.rwl_um);
  (* RWL tracks HPWL: it can dip slightly below the centre-to-centre HPWL
     because routes terminate at pin access points, not pin centres, but
     it stays the same order of magnitude *)
  checkb "rwl within a factor of hpwl" true
    (s.Route.Metrics.rwl_um >= 0.5 *. s.Route.Metrics.hpwl_um
     && s.Route.Metrics.rwl_um <= 3.0 *. s.Route.Metrics.hpwl_um)

(* constructed alignment: two INVs stacked in adjacent rows with connected
   pins on the same track must be routed as a dM1 *)
let test_dm1_detected_on_aligned_pair () =
  let inv = Pdk.Libgen.find closed_lib "INV_X1" in
  let mk name nets = { Netlist.Design.inst_name = name; master = inv; pin_nets = nets } in
  let d =
    {
      Netlist.Design.name = "aligned";
      lib = closed_lib;
      instances = [| mk "a" [| -1; 0 |]; mk "b" [| 0; -1 |] |];
      nets =
        [|
          {
            Netlist.Design.net_name = "n";
            pins =
              [|
                { Netlist.Design.inst = 0; pin = 1 };  (* a.ZN, track 1 *)
                { Netlist.Design.inst = 1; pin = 0 };  (* b.A, track 0 *)
              |];
            is_clock = false;
          };
        |];
    }
  in
  let p = Place.Placement.create d ~utilization:0.1 in
  (* align a.ZN (offset track 1) with b.A (offset track 0): place b one
     site to the right of a, in the row above *)
  Place.Placement.move p 0 ~site:2 ~row:0 ~orient:Geom.Orient.N;
  Place.Placement.move p 1 ~site:3 ~row:1 ~orient:Geom.Orient.N;
  let ga = Place.Placement.pin_pos p { Netlist.Design.inst = 0; pin = 1 } in
  let gb = Place.Placement.pin_pos p { Netlist.Design.inst = 1; pin = 0 } in
  check "aligned x" ga.Geom.Point.x gb.Geom.Point.x;
  let r = Route.Router.route p in
  let s = Route.Metrics.summarize r in
  check "routed as dM1" 1 s.Route.Metrics.dm1;
  check "no via12 needed" 0 s.Route.Metrics.via12

(* misaligned pair must NOT count as dM1 and needs vias *)
let test_misaligned_pair_needs_vias () =
  let inv = Pdk.Libgen.find closed_lib "INV_X1" in
  let mk name nets = { Netlist.Design.inst_name = name; master = inv; pin_nets = nets } in
  let d =
    {
      Netlist.Design.name = "misaligned";
      lib = closed_lib;
      instances = [| mk "a" [| -1; 0 |]; mk "b" [| 0; -1 |] |];
      nets =
        [|
          {
            Netlist.Design.net_name = "n";
            pins =
              [|
                { Netlist.Design.inst = 0; pin = 1 };
                { Netlist.Design.inst = 1; pin = 0 };
              |];
            is_clock = false;
          };
        |];
    }
  in
  let p = Place.Placement.create d ~utilization:0.1 in
  Place.Placement.move p 0 ~site:2 ~row:0 ~orient:Geom.Orient.N;
  Place.Placement.move p 1 ~site:8 ~row:1 ~orient:Geom.Orient.N;
  let r = Route.Router.route p in
  let s = Route.Metrics.summarize r in
  check "not a dM1" 0 s.Route.Metrics.dm1;
  checkb "uses vias" true (s.Route.Metrics.via12 > 0)

(* alignment achieved via the flip degree of freedom must also route as a
   dM1: flip the lower INV so its mirrored ZN lines up with the upper A *)
let test_dm1_via_flip () =
  let inv = Pdk.Libgen.find closed_lib "INV_X1" in
  let mk name nets = { Netlist.Design.inst_name = name; master = inv; pin_nets = nets } in
  let d =
    {
      Netlist.Design.name = "flip";
      lib = closed_lib;
      instances = [| mk "a" [| -1; 0 |]; mk "b" [| 0; -1 |] |];
      nets =
        [|
          {
            Netlist.Design.net_name = "n";
            pins =
              [|
                { Netlist.Design.inst = 0; pin = 1 };
                { Netlist.Design.inst = 1; pin = 0 };
              |];
            is_clock = false;
          };
        |];
    }
  in
  let p = Place.Placement.create d ~utilization:0.1 in
  (* flipped a: ZN moves from track 1 to track 0; b directly above at the
     same site aligns its A (track 0) *)
  Place.Placement.move p 0 ~site:3 ~row:0 ~orient:Geom.Orient.FN;
  Place.Placement.move p 1 ~site:3 ~row:1 ~orient:Geom.Orient.N;
  let ga = Place.Placement.pin_pos p { Netlist.Design.inst = 0; pin = 1 } in
  let gb = Place.Placement.pin_pos p { Netlist.Design.inst = 1; pin = 0 } in
  check "flip aligns x" ga.Geom.Point.x gb.Geom.Point.x;
  let s = Route.Metrics.summarize (Route.Router.route p) in
  check "routed as dM1" 1 s.Route.Metrics.dm1

let test_router_deterministic () =
  let p = placed_design closed_lib in
  let s1 = Route.Metrics.summarize (Route.Router.route p) in
  let s2 = Route.Metrics.summarize (Route.Router.route p) in
  check "same dm1" s1.Route.Metrics.dm1 s2.Route.Metrics.dm1;
  Alcotest.(check (float 0.0001)) "same rwl" s1.Route.Metrics.rwl_um
    s2.Route.Metrics.rwl_um

let test_openm1_routes () =
  let lib = Pdk.Libgen.generate (Pdk.Tech.default Pdk.Cell_arch.Open_m1) in
  let p = placed_design lib in
  let r = Route.Router.route p in
  let s = Route.Metrics.summarize r in
  check "no failures" 0 r.Route.Router.failed_subnets;
  checkb "openm1 has baseline dm1" true (s.Route.Metrics.dm1 > 0)

(* the O(1) ledger count always matches the full-edge-scan oracle, and
   per-net overflow flags agree with a scan over the stored paths —
   including after rip-up under congestion *)
let test_overflow_ledger () =
  let p = placed_design ~n:150 ~utilization:0.85 closed_lib in
  let cfg = { Route.Router.default_config with layers = 3; ripup_passes = 1 } in
  let r = Route.Router.route ~config:cfg p in
  let g = r.Route.Router.grid in
  check "ledger = scan" (Route.Grid.overflow_count_scan g)
    (Route.Grid.overflow_count g);
  Array.iter
    (fun (nr : Route.Router.net_route) ->
      let on_overflow = ref false in
      Array.iter
        (fun (sn : Route.Router.subnet) ->
          Array.iter
            (fun c ->
              match Route.Router.edge_of_code c with
              | Route.Router.Wire n ->
                if g.Route.Grid.wire_usage.(n) > 1 then on_overflow := true
              | Route.Router.Via n ->
                if g.Route.Grid.via_usage.(n) > 1 then on_overflow := true)
            sn.Route.Router.path)
        nr.Route.Router.subnets;
      checkb "net_overflow agrees with path scan" !on_overflow
        (Route.Grid.net_overflow g nr.Route.Router.net_id > 0))
    r.Route.Router.routes

let () =
  Alcotest.run "route"
    [
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
      ( "bqueue",
        [
          Alcotest.test_case "basic" `Quick test_bqueue_basic;
          QCheck_alcotest.to_alcotest prop_bqueue_matches_heap;
        ] );
      ( "stampset", [ Alcotest.test_case "basic" `Quick test_stampset ] );
      ( "grid",
        [
          Alcotest.test_case "geometry" `Quick test_grid_geometry;
          Alcotest.test_case "edges" `Quick test_grid_edges;
          Alcotest.test_case "pin access" `Quick test_grid_pin_access_nonempty;
          Alcotest.test_case "pin blockage" `Quick test_grid_pin_blockage_ownership;
          Alcotest.test_case "conv12 rails" `Quick test_conv12_blocks_inter_row_m1;
          Alcotest.test_case "m2 power rails" `Quick test_m2_power_rails_blocked;
          Alcotest.test_case "pdn stripes" `Quick test_pdn_stripes_toggle;
          Alcotest.test_case "reduced layers" `Quick test_reduced_layer_stack;
          Alcotest.test_case "route on 4 layers" `Quick test_route_on_four_layers;
          Alcotest.test_case "clear usage" `Quick test_clear_usage;
        ] );
      ( "router",
        [
          Alcotest.test_case "completes" `Quick test_route_completes;
          Alcotest.test_case "subnet count" `Quick test_route_subnet_count;
          Alcotest.test_case "low util no drvs" `Quick test_route_low_util_no_drvs;
          Alcotest.test_case "use_dm1 ablation" `Quick test_use_dm1_ablation;
          Alcotest.test_case "deterministic" `Quick test_router_deterministic;
          Alcotest.test_case "openm1 routes" `Quick test_openm1_routes;
          Alcotest.test_case "overflow ledger" `Quick test_overflow_ledger;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "consistency" `Quick test_metrics_consistency;
          Alcotest.test_case "layer breakdowns" `Quick test_layer_breakdowns;
          Alcotest.test_case "dm1 aligned pair" `Quick test_dm1_detected_on_aligned_pair;
          Alcotest.test_case "dm1 via flip" `Quick test_dm1_via_flip;
          Alcotest.test_case "misaligned needs vias" `Quick test_misaligned_pair_needs_vias;
        ] );
    ]
