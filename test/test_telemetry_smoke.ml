(* End-to-end smoke for the vm1d admin plane (@telemetry-smoke).

   Usage: test_telemetry_smoke.exe VM1D.exe JOBS.txt GOLDEN.txt

   Two daemon runs over the same job stream:

   - an instrumented run ([--admin-socket] + [--job-log]) that is
     scraped mid-stream: after the first reply the admin socket must
     answer [metrics], [health] and [jobs] with one JSON document each,
     every document's ["schema"] tag must round-trip through
     [Obs.Schemas.of_string], and the metrics/health payloads must be
     coherent (ready, at least one job counted);
   - a plain run with no admin plane at all.

   The ["result"] member of every reply must be byte-identical across
   the two runs — the scrape-does-not-perturb contract of
   ARCHITECTURE.md, checked here across real processes and sockets.

   Finally the job log written by the instrumented run is compared
   against the committed golden with the two wall-clock fields
   ([queue_ms], [execute_ms]) masked: everything else in a
   vm1dp-joblog/1 record is deterministic for a fixed job stream. *)

module J = Obs.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> close_in ic; List.rev acc
  in
  go []

(* --- tiny socket client ------------------------------------------- *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let wait_for_socket path =
  let deadline = Unix.gettimeofday () +. 30.0 in
  while not (Sys.file_exists path) do
    if Unix.gettimeofday () > deadline then
      die "telemetry-smoke: %s never appeared" path;
    Unix.sleepf 0.05
  done

let spawn_daemon vm1d args =
  Unix.create_process vm1d
    (Array.of_list (vm1d :: args))
    Unix.stdin Unix.stdout Unix.stderr

let reap pid what =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> die "telemetry-smoke: %s exited %d" what c
  | _, _ -> die "telemetry-smoke: %s killed by signal" what

(* --- JSON helpers -------------------------------------------------- *)

let parse_doc what line =
  match J.parse line with
  | Ok j -> j
  | Error msg -> die "telemetry-smoke: %s is not JSON (%s): %s" what msg line

let schema_tag what j =
  match J.member "schema" j with
  | Some (J.Str s) -> s
  | _ -> die "telemetry-smoke: %s has no \"schema\" field" what

(* Every admin document's schema tag must round-trip through the
   central registry — the contract the @telemetry-smoke alias exists to
   pin down. *)
let check_schema_roundtrip what j expected =
  let s = schema_tag what j in
  if not (String.equal s expected) then
    die "telemetry-smoke: %s schema %S, wanted %S" what s expected;
  match Obs.Schemas.of_string s with
  | Some id when String.equal (Obs.Schemas.to_string id) s -> ()
  | _ -> die "telemetry-smoke: %s schema %S fails Obs.Schemas round-trip" what s

let result_member what line =
  let j = parse_doc what line in
  match J.member "result" j with
  | Some r -> J.to_string r
  | None -> (
    (* error replies carry no result; compare their code instead *)
    match J.member "error" j with
    | Some e -> "err:" ^ J.to_string e
    | None -> die "telemetry-smoke: %s has neither result nor error" what)

let member_exn what key j =
  match J.member key j with
  | Some v -> v
  | None -> die "telemetry-smoke: %s missing %S" what key

(* --- the two runs --------------------------------------------------- *)

(* With --max-in-flight 1 the daemon flushes the oldest reply as soon
   as a second job is queued behind it, so the client can pipeline:
   send two jobs, read the first reply, scrape, send the rest, signal
   EOF with shutdown(SEND) and drain the remaining replies. A strict
   send-one/read-one client would deadlock — the reader only flushes on
   backpressure or EOF (PROTOCOL.md, "Flow control"). *)
let run_admin vm1d jobs ~spath ~apath ~jlog =
  let pid =
    spawn_daemon vm1d
      [
        "--socket"; spath; "--admin-socket"; apath; "--job-log"; jlog;
        "--accept-limit"; "1"; "--jobs"; "2"; "--max-in-flight"; "1";
      ]
  in
  wait_for_socket spath;
  wait_for_socket apath;
  let fd, ic, oc = connect spath in
  (* two jobs in, first reply out, then scrape mid-stream: the admin
     plane must answer while the job connection is open and the stream
     unfinished *)
  let j1, j2, rest =
    match jobs with
    | a :: b :: r -> (a, b, r)
    | _ -> die "telemetry-smoke: job stream needs at least two jobs"
  in
  send oc j1;
  send oc j2;
  let replies = ref [ input_line ic ] in
  let afd, aic, aoc = connect apath in
  let scrape verb =
    send aoc verb;
    parse_doc (Printf.sprintf "admin %s reply" verb) (input_line aic)
  in
  let m = scrape "metrics" in
  check_schema_roundtrip "metrics" m Obs.Schemas.metrics;
  let cum = member_exn "metrics" "cumulative" m in
  (match J.member "serve.jobs" (member_exn "metrics.cumulative" "counters" cum) with
  | Some (J.Int n) when n >= 1 -> ()
  | _ -> die "telemetry-smoke: metrics counted no serve.jobs after a reply");
  (match member_exn "metrics" "windows" m with
  | J.List (_ :: _) -> ()
  | _ -> die "telemetry-smoke: metrics carries no windowed views");
  let h = scrape "health" in
  check_schema_roundtrip "health" h Obs.Schemas.health;
  (match member_exn "health" "ready" h with
  | J.Bool true -> ()
  | _ -> die "telemetry-smoke: health not ready");
  let jd = scrape "jobs" in
  check_schema_roundtrip "jobs" jd Obs.Schemas.joblog;
  ignore aic;
  (try Unix.close afd with Unix.Unix_error _ -> ());
  List.iter (send oc) rest;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  for _ = 1 to List.length jobs - 1 do
    replies := input_line ic :: !replies
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  reap pid "instrumented vm1d";
  List.rev !replies

let run_plain vm1d jobs ~spath =
  let pid =
    spawn_daemon vm1d
      [
        "--socket"; spath; "--accept-limit"; "1"; "--jobs"; "2";
        "--max-in-flight"; "1";
      ]
  in
  wait_for_socket spath;
  let fd, ic, oc = connect spath in
  List.iter (send oc) jobs;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let replies = List.map (fun _ -> input_line ic) jobs in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  reap pid "plain vm1d";
  replies

(* --- joblog golden --------------------------------------------------- *)

let mask_wallclock line =
  Str.global_replace
    (Str.regexp {|"\(queue_ms\|execute_ms\)": *-?[0-9][0-9.eE+-]*|})
    {|"\1":0|} line

let check_joblog ~jlog ~golden =
  let got = List.map mask_wallclock (read_lines jlog)
  and want = List.map mask_wallclock (read_lines golden) in
  if List.length got <> List.length want then
    die "telemetry-smoke: job log has %d records, golden %d"
      (List.length got) (List.length want);
  List.iteri
    (fun i (g, w) ->
      if not (String.equal g w) then
        die "telemetry-smoke: job log record %d differs from golden:\n  got  %s\n  want %s"
          (i + 1) g w)
    (List.combine got want)

(* --- main ------------------------------------------------------------ *)

let () =
  let vm1d, jobs_file, golden =
    match Sys.argv with
    | [| _; a; b; c |] -> (a, b, c)
    | _ -> die "usage: test_telemetry_smoke.exe VM1D.exe JOBS.txt GOLDEN.txt"
  in
  (* fail loudly rather than hang CI if a socket read deadlocks *)
  ignore (Unix.alarm 120);
  let jobs = read_lines jobs_file in
  let tmp = Filename.get_temp_dir_name () in
  (* AF_UNIX paths are length-limited (~107 bytes), so the sockets live
     under the system temp dir, not the (deeply nested) dune sandbox *)
  let pid = Unix.getpid () in
  let spath = Filename.concat tmp (Printf.sprintf "vm1ts%d-s.sock" pid)
  and apath = Filename.concat tmp (Printf.sprintf "vm1ts%d-a.sock" pid)
  and ppath = Filename.concat tmp (Printf.sprintf "vm1ts%d-p.sock" pid) in
  let jlog = "telemetry_smoke_joblog.txt" in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ spath; apath; ppath ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      let scraped = run_admin vm1d jobs ~spath ~apath ~jlog in
      let plain = run_plain vm1d jobs ~spath:ppath in
      if List.length scraped <> List.length plain then
        die "telemetry-smoke: %d replies with admin plane, %d without"
          (List.length scraped) (List.length plain);
      List.iteri
        (fun i (a, b) ->
          let what = Printf.sprintf "reply %d" (i + 1) in
          let ra = result_member (what ^ " (scraped)") a
          and rb = result_member (what ^ " (plain)") b in
          if not (String.equal ra rb) then
            die
              "telemetry-smoke: %s result differs with the admin plane \
               on:\n  with    %s\n  without %s"
              what ra rb)
        (List.combine scraped plain);
      check_joblog ~jlog ~golden;
      Printf.printf
        "telemetry smoke OK: %d byte-identical replies, 3 admin verbs \
         validated, %d job-log records match golden\n"
        (List.length scraped)
        (List.length (read_lines jlog)))
