(* Tests for the observability layer: span nesting, exception safety,
   domain-safe metric merging, the disabled no-op path, and the JSON
   trace round-trip. Obs state is process-global, so every test starts
   from [reset] and leaves instrumentation disabled. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let with_obs f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

(* --- spans --- *)

let test_span_nesting () =
  with_obs (fun () ->
      Obs.with_span "outer" (fun () ->
          Obs.with_span "first" (fun () -> ());
          Obs.with_span "second" (fun () ->
              Obs.with_span "inner" (fun () -> ())));
      let snap = Obs.snapshot () in
      check_int "one root" 1 (List.length snap.Obs.spans);
      let root = List.hd snap.Obs.spans in
      check_str "root name" "outer" root.Obs.Span.name;
      check_int "root children" 2 (List.length root.Obs.Span.children);
      let names = List.map (fun (s : Obs.Span.t) -> s.name) root.children in
      check_bool "child order" true (names = [ "first"; "second" ]);
      let second = List.nth root.children 1 in
      check_int "grandchild" 1 (List.length second.Obs.Span.children);
      (* timing sanity: children nest inside the parent interval *)
      List.iter
        (fun (c : Obs.Span.t) ->
          check_bool "child starts after parent" true
            (c.start_ns >= root.start_ns);
          check_bool "child ends before parent" true (c.end_ns <= root.end_ns))
        root.children)

let test_span_attrs () =
  with_obs (fun () ->
      Obs.with_span "work" ~attrs:[ ("given", `Int 1) ] (fun () ->
          Obs.add_attr "added" (`Str "yes"));
      let snap = Obs.snapshot () in
      let root = List.hd snap.Obs.spans in
      check_bool "attrs in order" true
        (root.Obs.Span.attrs = [ ("given", `Int 1); ("added", `Str "yes") ]))

let test_span_exception_safe () =
  with_obs (fun () ->
      (try
         Obs.with_span "outer" (fun () ->
             Obs.with_span "thrower" (fun () -> failwith "boom"))
       with Failure _ -> ());
      let snap = Obs.snapshot () in
      check_int "root recorded despite raise" 1 (List.length snap.Obs.spans);
      let root = List.hd snap.Obs.spans in
      check_int "child recorded despite raise" 1
        (List.length root.Obs.Span.children);
      (* the open-span stack recovered: new spans nest at the top level *)
      Obs.with_span "after" (fun () -> ());
      check_int "stack balanced" 2 (List.length (Obs.snapshot ()).Obs.spans))

let test_disabled_is_noop () =
  Obs.reset ();
  Obs.set_enabled false;
  Obs.with_span "invisible" (fun () -> ());
  Obs.Counter.incr (Obs.counter "test.disabled_counter");
  Obs.Gauge.set (Obs.gauge "test.disabled_gauge") 5.0;
  let snap = Obs.snapshot () in
  check_int "no spans" 0 (List.length snap.Obs.spans);
  check_int "counter untouched" 0
    (Obs.Counter.value (Obs.counter "test.disabled_counter"));
  check_bool "gauge untouched" true
    (Obs.Gauge.value (Obs.gauge "test.disabled_gauge") = 0.0)

(* --- metrics across domains --- *)

let test_counter_merge_across_domains () =
  with_obs (fun () ->
      let c = Obs.counter "test.par_counter" in
      let worker () =
        for _ = 1 to 10_000 do
          Obs.Counter.incr c
        done;
        Obs.with_span "domain_root" (fun () -> ())
      in
      let domains = List.init 4 (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains;
      check_int "all bumps merged" 50_000 (Obs.Counter.value c);
      (* spans opened on spawned domains surface as their own roots *)
      let snap = Obs.snapshot () in
      check_int "one root per domain" 5 (List.length snap.Obs.spans))

let test_histogram () =
  with_obs (fun () ->
      let h = Obs.histogram ~bounds:[| 1.0; 10.0; 100.0 |] "test.hist" in
      List.iter (Obs.Histogram.observe h) [ 0.5; 5.0; 50.0; 500.0; 2.0 ];
      let s = Obs.Histogram.snap h in
      check_int "count" 5 s.Obs.Histogram.count;
      check_bool "sum" true (abs_float (s.sum -. 557.5) < 1e-9);
      check_bool "bucket counts" true (s.counts = [| 1; 2; 1; 1 |]))

let test_percentile () =
  with_obs (fun () ->
      let h = Obs.histogram ~bounds:[| 10.0; 20.0; 40.0 |] "test.pct" in
      (* 8 observations in [0,10), 2 in [10,20): p50 interpolates inside
         the first bucket, p90 lands exactly on its upper bound, p99
         interpolates inside the second *)
      for i = 1 to 8 do
        Obs.Histogram.observe h (float_of_int i)
      done;
      Obs.Histogram.observe h 12.0;
      Obs.Histogram.observe h 18.0;
      let s = Obs.Histogram.snap h in
      let pct q = Obs.Histogram.percentile s q in
      check_bool "p50" true (abs_float (pct 0.50 -. 6.25) < 1e-9);
      check_bool "p90" true (abs_float (pct 0.90 -. 15.0) < 1e-9);
      check_bool "p100 capped at bound" true (pct 1.0 <= 20.0 +. 1e-9);
      (* documented contract: percentile is total, and an empty snap has
         no quantiles — nan, never a fake 0 (regression: used to be 0) *)
      check_bool "empty is nan" true
        (Float.is_nan
           (Obs.Histogram.percentile
              (Obs.Histogram.snap (Obs.histogram "test.pct2"))
              0.5));
      check_bool "degenerate bounds is nan" true
        (Float.is_nan
           (Obs.Histogram.percentile
              { Obs.Histogram.bounds = [||]; counts = [| 3 |];
                count = 3; sum = 1.0 }
              0.5));
      (* overflow-only data reports the highest finite bound *)
      let o = Obs.histogram ~bounds:[| 1.0; 2.0 |] "test.pct3" in
      Obs.Histogram.observe o 99.0;
      check_bool "overflow bucket" true
        (abs_float (Obs.Histogram.percentile (Obs.Histogram.snap o) 0.9 -. 2.0)
        < 1e-9))

let test_aggregate () =
  with_obs (fun () ->
      for _ = 1 to 3 do
        Obs.with_span "leaf" (fun () -> ())
      done;
      Obs.with_span "top" (fun () -> Obs.with_span "leaf" (fun () -> ()));
      let aggs = Obs.aggregate_spans (Obs.snapshot ()).Obs.spans in
      let leaf = List.assoc "leaf" aggs in
      check_int "nested spans aggregated too" 4 leaf.Obs.calls;
      check_int "top once" 1 (List.assoc "top" aggs).Obs.calls)

(* --- JSON --- *)

let test_json_roundtrip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("name", Str "a \"quoted\"\nstring");
          ("xs", List [ Int 1; Int (-42); Float 2.5; Float 1e-9 ]);
          ("flags", Obj [ ("on", Bool true); ("off", Bool false) ]);
          ("nothing", Null);
          ("empty_list", List []);
          ("empty_obj", Obj []);
        ])
  in
  match Obs.Json.parse (Obs.Json.to_string v) with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok v' -> check_bool "round-trip equal" true (v = v')

let test_trace_export_roundtrip () =
  with_obs (fun () ->
      Obs.with_span "root" ~attrs:[ ("k", `Int 7) ] (fun () ->
          Obs.with_span "child" (fun () -> ()));
      Obs.Counter.add (Obs.counter "test.c") 3;
      Obs.Gauge.set (Obs.gauge "test.g") 1.5;
      Obs.Histogram.observe (Obs.histogram "test.h") 0.25;
      let text = Obs.Json.to_string (Obs.trace_json (Obs.snapshot ())) in
      match Obs.Json.parse text with
      | Error e -> Alcotest.failf "trace does not parse: %s" e
      | Ok j ->
        check_bool "schema tag" true
          (Obs.Json.member "schema" j = Some (Obs.Json.Str Obs.Schemas.trace));
        (match Obs.Json.member "counters" j with
        | Some counters ->
          check_bool "counter exported" true
            (Obs.Json.member "test.c" counters = Some (Obs.Json.Int 3))
        | None -> Alcotest.fail "no counters key");
        (match Obs.Json.member "spans" j with
        | Some (Obs.Json.List [ root ]) ->
          check_bool "span name" true
            (Obs.Json.member "name" root = Some (Obs.Json.Str "root"));
          check_bool "span has children" true
            (Obs.Json.member "children" root <> None)
        | _ -> Alcotest.fail "expected exactly one root span"))

let test_reset () =
  with_obs (fun () ->
      Obs.with_span "s" (fun () -> ());
      Obs.Counter.incr (Obs.counter "test.reset_c");
      Obs.reset ();
      check_int "spans cleared" 0 (List.length (Obs.snapshot ()).Obs.spans);
      check_int "counter zeroed" 0
        (Obs.Counter.value (Obs.counter "test.reset_c")))

(* --- incremental snapshots --- *)

let test_snapshot_delta () =
  with_obs (fun () ->
      let cur = Obs.cursor () in
      Obs.with_span "first" (fun () -> ());
      let d1 = Obs.snapshot_delta cur in
      check_int "first delta sees first root" 1 (List.length d1.Obs.spans);
      let d2 = Obs.snapshot_delta cur in
      check_int "nothing new, empty delta" 0 (List.length d2.Obs.spans);
      Obs.with_span "second" (fun () -> ());
      Obs.with_span "third" (fun () -> ());
      let d3 = Obs.snapshot_delta cur in
      check_int "only the fresh roots" 2 (List.length d3.Obs.spans);
      check_str "oldest fresh root first" "second"
        (List.hd d3.Obs.spans).Obs.Span.name;
      (* metrics stay cumulative in a delta *)
      Obs.Counter.add (Obs.counter "test.delta_c") 7;
      let d4 = Obs.snapshot_delta cur in
      check_int "cumulative counter" 7
        (List.assoc "test.delta_c" d4.Obs.counters);
      (* a cursor ahead of a reset history self-heals *)
      Obs.reset ();
      check_int "after reset, empty" 0
        (List.length (Obs.snapshot_delta cur).Obs.spans);
      Obs.with_span "fourth" (fun () -> ());
      check_int "then sees new roots again" 1
        (List.length (Obs.snapshot_delta cur).Obs.spans))

(* --- rolling windows --- *)

let with_window f =
  Obs.reset ();
  Obs.set_enabled true;
  Obs.Window.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Window.set_enabled false;
      Obs.set_enabled false;
      Obs.reset ())
    f

let test_window_basic () =
  with_window (fun () ->
      let c = Obs.counter "test.win_c" in
      let g = Obs.gauge "test.win_g" in
      let h = Obs.histogram ~bounds:[| 1.0; 10.0 |] "test.win_h" in
      Obs.Counter.add c 5;
      Obs.Counter.incr c;
      Obs.Gauge.set g 2.5;
      Obs.Histogram.observe h 0.5;
      Obs.Histogram.observe h 50.0;
      let full = Obs.Window.read ~horizon_ns:(Obs.Window.max_horizon_ns ()) () in
      check_int "windowed counter = all recent bumps" 6
        (List.assoc "test.win_c" full.Obs.Window.v_counters);
      check_bool "windowed gauge = last write" true
        (List.assoc "test.win_g" full.Obs.Window.v_gauges = Some 2.5);
      let hs = List.assoc "test.win_h" full.Obs.Window.v_histograms in
      check_int "windowed histogram count" 2 hs.Obs.Histogram.count;
      check_bool "windowed histogram buckets" true
        (hs.Obs.Histogram.counts = [| 1; 0; 1 |]);
      (* horizons clamp to the ring capacity *)
      check_bool "horizon clamped" true
        (full.Obs.Window.v_horizon_ns <= Obs.Window.max_horizon_ns ());
      (* reading far in the future expires every slot: the counters drop
         to zero, the gauge to None, the histogram to empty — and the
         windowed percentile hits the nan contract *)
      let later =
        Int64.add (Obs.now_ns ())
          (Int64.mul 1000L (Obs.Window.max_horizon_ns ()))
      in
      let gone =
        Obs.Window.read ~now_ns:later
          ~horizon_ns:(Obs.Window.max_horizon_ns ()) ()
      in
      check_int "expired counter" 0
        (List.assoc "test.win_c" gone.Obs.Window.v_counters);
      check_bool "expired gauge" true
        (List.assoc "test.win_g" gone.Obs.Window.v_gauges = None);
      let ghs = List.assoc "test.win_h" gone.Obs.Window.v_histograms in
      check_int "expired histogram" 0 ghs.Obs.Histogram.count;
      check_bool "expired percentile is nan" true
        (Float.is_nan (Obs.Histogram.percentile ghs 0.5)))

let test_window_off_by_default () =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      check_bool "windows off unless asked" false (Obs.Window.enabled ());
      Obs.Counter.add (Obs.counter "test.win_off") 3;
      let v = Obs.Window.read ~horizon_ns:(Obs.Window.max_horizon_ns ()) () in
      check_int "bumps while off are cumulative-only" 0
        (List.assoc "test.win_off" v.Obs.Window.v_counters);
      check_int "cumulative still sees them" 3
        (Obs.Counter.value (Obs.counter "test.win_off")))

(* The windowed ≡ merged-deltas invariant (ARCHITECTURE.md): a window
   covering the whole recording period equals the sequential reference
   no matter how many domains recorded. The work fans out through the
   sanctioned Exec pool (jobs 1/2/4), never raw Domain.spawn. *)
let prop_window_merge =
  QCheck2.Test.make ~name:"windowed = sequential reference across jobs 1/2/4"
    ~count:20
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 1 50))
    (fun xs ->
      let expected_sum = List.fold_left ( + ) 0 xs in
      let arr = Array.of_list xs in
      List.for_all
        (fun jobs ->
          Exec.set_jobs jobs;
          Obs.reset ();
          Obs.set_enabled true;
          Obs.Window.set_enabled true;
          Fun.protect
            ~finally:(fun () ->
              Obs.Window.set_enabled false;
              Obs.set_enabled false;
              Obs.reset ())
            (fun () ->
              let c = Obs.counter "test.win_merge_c" in
              let h =
                Obs.histogram ~bounds:[| 10.0; 30.0 |] "test.win_merge_h"
              in
              Exec.parallel_for (Array.length arr) (fun i ->
                  Obs.Counter.add c arr.(i);
                  Obs.Histogram.observe h (float_of_int arr.(i)));
              let v =
                Obs.Window.read ~horizon_ns:(Obs.Window.max_horizon_ns ()) ()
              in
              let wc = List.assoc "test.win_merge_c" v.Obs.Window.v_counters in
              let wh =
                List.assoc "test.win_merge_h" v.Obs.Window.v_histograms
              in
              wc = expected_sum
              && wc = Obs.Counter.value c
              && wh.Obs.Histogram.count = Array.length arr
              && wh.Obs.Histogram.counts
                 = (Obs.Histogram.snap h).Obs.Histogram.counts))
        [ 1; 2; 4 ])

(* --- bounded ring --- *)

let test_ring () =
  let r = Obs.Ring.create 3 in
  check_int "empty" 0 (Obs.Ring.length r);
  Obs.Ring.push r 1;
  Obs.Ring.push r 2;
  check_bool "oldest first" true (Obs.Ring.to_list r = [ 1; 2 ]);
  Obs.Ring.push r 3;
  Obs.Ring.push r 4;
  check_int "capped" 3 (Obs.Ring.length r);
  check_bool "evicts oldest" true (Obs.Ring.to_list r = [ 2; 3; 4 ])

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "attrs" `Quick test_span_attrs;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "disabled is noop" `Quick test_disabled_is_noop;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter merge across domains" `Quick
            test_counter_merge_across_domains;
          Alcotest.test_case "histogram buckets" `Quick test_histogram;
          Alcotest.test_case "histogram percentiles" `Quick test_percentile;
          Alcotest.test_case "aggregation" `Quick test_aggregate;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "snapshot delta" `Quick test_snapshot_delta;
        ] );
      ( "windows",
        [
          Alcotest.test_case "record and read" `Quick test_window_basic;
          Alcotest.test_case "off by default" `Quick
            test_window_off_by_default;
          QCheck_alcotest.to_alcotest prop_window_merge;
        ] );
      ( "ring",
        [ Alcotest.test_case "bounded fifo" `Quick test_ring ] );
      ( "json",
        [
          Alcotest.test_case "value round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "trace export round-trip" `Quick
            test_trace_export_roundtrip;
        ] );
    ]
