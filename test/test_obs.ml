(* Tests for the observability layer: span nesting, exception safety,
   domain-safe metric merging, the disabled no-op path, and the JSON
   trace round-trip. Obs state is process-global, so every test starts
   from [reset] and leaves instrumentation disabled. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let with_obs f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

(* --- spans --- *)

let test_span_nesting () =
  with_obs (fun () ->
      Obs.with_span "outer" (fun () ->
          Obs.with_span "first" (fun () -> ());
          Obs.with_span "second" (fun () ->
              Obs.with_span "inner" (fun () -> ())));
      let snap = Obs.snapshot () in
      check_int "one root" 1 (List.length snap.Obs.spans);
      let root = List.hd snap.Obs.spans in
      check_str "root name" "outer" root.Obs.Span.name;
      check_int "root children" 2 (List.length root.Obs.Span.children);
      let names = List.map (fun (s : Obs.Span.t) -> s.name) root.children in
      check_bool "child order" true (names = [ "first"; "second" ]);
      let second = List.nth root.children 1 in
      check_int "grandchild" 1 (List.length second.Obs.Span.children);
      (* timing sanity: children nest inside the parent interval *)
      List.iter
        (fun (c : Obs.Span.t) ->
          check_bool "child starts after parent" true
            (c.start_ns >= root.start_ns);
          check_bool "child ends before parent" true (c.end_ns <= root.end_ns))
        root.children)

let test_span_attrs () =
  with_obs (fun () ->
      Obs.with_span "work" ~attrs:[ ("given", `Int 1) ] (fun () ->
          Obs.add_attr "added" (`Str "yes"));
      let snap = Obs.snapshot () in
      let root = List.hd snap.Obs.spans in
      check_bool "attrs in order" true
        (root.Obs.Span.attrs = [ ("given", `Int 1); ("added", `Str "yes") ]))

let test_span_exception_safe () =
  with_obs (fun () ->
      (try
         Obs.with_span "outer" (fun () ->
             Obs.with_span "thrower" (fun () -> failwith "boom"))
       with Failure _ -> ());
      let snap = Obs.snapshot () in
      check_int "root recorded despite raise" 1 (List.length snap.Obs.spans);
      let root = List.hd snap.Obs.spans in
      check_int "child recorded despite raise" 1
        (List.length root.Obs.Span.children);
      (* the open-span stack recovered: new spans nest at the top level *)
      Obs.with_span "after" (fun () -> ());
      check_int "stack balanced" 2 (List.length (Obs.snapshot ()).Obs.spans))

let test_disabled_is_noop () =
  Obs.reset ();
  Obs.set_enabled false;
  Obs.with_span "invisible" (fun () -> ());
  Obs.Counter.incr (Obs.counter "test.disabled_counter");
  Obs.Gauge.set (Obs.gauge "test.disabled_gauge") 5.0;
  let snap = Obs.snapshot () in
  check_int "no spans" 0 (List.length snap.Obs.spans);
  check_int "counter untouched" 0
    (Obs.Counter.value (Obs.counter "test.disabled_counter"));
  check_bool "gauge untouched" true
    (Obs.Gauge.value (Obs.gauge "test.disabled_gauge") = 0.0)

(* --- metrics across domains --- *)

let test_counter_merge_across_domains () =
  with_obs (fun () ->
      let c = Obs.counter "test.par_counter" in
      let worker () =
        for _ = 1 to 10_000 do
          Obs.Counter.incr c
        done;
        Obs.with_span "domain_root" (fun () -> ())
      in
      let domains = List.init 4 (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains;
      check_int "all bumps merged" 50_000 (Obs.Counter.value c);
      (* spans opened on spawned domains surface as their own roots *)
      let snap = Obs.snapshot () in
      check_int "one root per domain" 5 (List.length snap.Obs.spans))

let test_histogram () =
  with_obs (fun () ->
      let h = Obs.histogram ~bounds:[| 1.0; 10.0; 100.0 |] "test.hist" in
      List.iter (Obs.Histogram.observe h) [ 0.5; 5.0; 50.0; 500.0; 2.0 ];
      let s = Obs.Histogram.snap h in
      check_int "count" 5 s.Obs.Histogram.count;
      check_bool "sum" true (abs_float (s.sum -. 557.5) < 1e-9);
      check_bool "bucket counts" true (s.counts = [| 1; 2; 1; 1 |]))

let test_percentile () =
  with_obs (fun () ->
      let h = Obs.histogram ~bounds:[| 10.0; 20.0; 40.0 |] "test.pct" in
      (* 8 observations in [0,10), 2 in [10,20): p50 interpolates inside
         the first bucket, p90 lands exactly on its upper bound, p99
         interpolates inside the second *)
      for i = 1 to 8 do
        Obs.Histogram.observe h (float_of_int i)
      done;
      Obs.Histogram.observe h 12.0;
      Obs.Histogram.observe h 18.0;
      let s = Obs.Histogram.snap h in
      let pct q = Obs.Histogram.percentile s q in
      check_bool "p50" true (abs_float (pct 0.50 -. 6.25) < 1e-9);
      check_bool "p90" true (abs_float (pct 0.90 -. 15.0) < 1e-9);
      check_bool "p100 capped at bound" true (pct 1.0 <= 20.0 +. 1e-9);
      check_bool "empty is 0" true
        (Obs.Histogram.percentile
           (Obs.Histogram.snap (Obs.histogram "test.pct2"))
           0.5
        = 0.0);
      (* overflow-only data reports the highest finite bound *)
      let o = Obs.histogram ~bounds:[| 1.0; 2.0 |] "test.pct3" in
      Obs.Histogram.observe o 99.0;
      check_bool "overflow bucket" true
        (abs_float (Obs.Histogram.percentile (Obs.Histogram.snap o) 0.9 -. 2.0)
        < 1e-9))

let test_aggregate () =
  with_obs (fun () ->
      for _ = 1 to 3 do
        Obs.with_span "leaf" (fun () -> ())
      done;
      Obs.with_span "top" (fun () -> Obs.with_span "leaf" (fun () -> ()));
      let aggs = Obs.aggregate_spans (Obs.snapshot ()).Obs.spans in
      let leaf = List.assoc "leaf" aggs in
      check_int "nested spans aggregated too" 4 leaf.Obs.calls;
      check_int "top once" 1 (List.assoc "top" aggs).Obs.calls)

(* --- JSON --- *)

let test_json_roundtrip () =
  let v =
    Obs.Json.(
      Obj
        [
          ("name", Str "a \"quoted\"\nstring");
          ("xs", List [ Int 1; Int (-42); Float 2.5; Float 1e-9 ]);
          ("flags", Obj [ ("on", Bool true); ("off", Bool false) ]);
          ("nothing", Null);
          ("empty_list", List []);
          ("empty_obj", Obj []);
        ])
  in
  match Obs.Json.parse (Obs.Json.to_string v) with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok v' -> check_bool "round-trip equal" true (v = v')

let test_trace_export_roundtrip () =
  with_obs (fun () ->
      Obs.with_span "root" ~attrs:[ ("k", `Int 7) ] (fun () ->
          Obs.with_span "child" (fun () -> ()));
      Obs.Counter.add (Obs.counter "test.c") 3;
      Obs.Gauge.set (Obs.gauge "test.g") 1.5;
      Obs.Histogram.observe (Obs.histogram "test.h") 0.25;
      let text = Obs.Json.to_string (Obs.trace_json (Obs.snapshot ())) in
      match Obs.Json.parse text with
      | Error e -> Alcotest.failf "trace does not parse: %s" e
      | Ok j ->
        check_bool "schema tag" true
          (Obs.Json.member "schema" j = Some (Obs.Json.Str Obs.Schemas.trace));
        (match Obs.Json.member "counters" j with
        | Some counters ->
          check_bool "counter exported" true
            (Obs.Json.member "test.c" counters = Some (Obs.Json.Int 3))
        | None -> Alcotest.fail "no counters key");
        (match Obs.Json.member "spans" j with
        | Some (Obs.Json.List [ root ]) ->
          check_bool "span name" true
            (Obs.Json.member "name" root = Some (Obs.Json.Str "root"));
          check_bool "span has children" true
            (Obs.Json.member "children" root <> None)
        | _ -> Alcotest.fail "expected exactly one root span"))

let test_reset () =
  with_obs (fun () ->
      Obs.with_span "s" (fun () -> ());
      Obs.Counter.incr (Obs.counter "test.reset_c");
      Obs.reset ();
      check_int "spans cleared" 0 (List.length (Obs.snapshot ()).Obs.spans);
      check_int "counter zeroed" 0
        (Obs.Counter.value (Obs.counter "test.reset_c")))

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "attrs" `Quick test_span_attrs;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "disabled is noop" `Quick test_disabled_is_noop;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter merge across domains" `Quick
            test_counter_merge_across_domains;
          Alcotest.test_case "histogram buckets" `Quick test_histogram;
          Alcotest.test_case "histogram percentiles" `Quick test_percentile;
          Alcotest.test_case "aggregation" `Quick test_aggregate;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "json",
        [
          Alcotest.test_case "value round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "trace export round-trip" `Quick
            test_trace_export_roundtrip;
        ] );
    ]
