(* lib/trace: parser, profile, critical path, diff, exporters.

   Golden files (golden_report.json, golden_flame.txt,
   golden_speedscope.json) are the committed outputs of vm1trace on
   mini_trace.json — a hand-written miniature trace with parallel roots,
   QoR attrs and a heatmap-carrying route span. Regenerate after an
   intentional format change with:
     vm1trace report --json / flame / flame --format speedscope *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let mini () =
  match Trace.Model.load "mini_trace.json" with
  | Ok t -> t
  | Error m -> Alcotest.failf "mini_trace.json: %s" m

(* --- parser --------------------------------------------------------- *)

let test_parse () =
  let t = mini () in
  Alcotest.(check int) "roots" 3 (List.length t.spans);
  Alcotest.(check int) "wall" 1500 (Trace.Model.wall_ns t);
  Alcotest.(check (list (pair string int)))
    "counters"
    [ ("route.failed_subnets", 1); ("scp.moves", 5); ("scp.windows_solved", 3) ]
    t.counters;
  let flow = List.hd t.spans in
  Alcotest.(check (option string))
    "str attr" (Some "mini")
    (Trace.Model.attr_str flow "design")

let test_parse_errors () =
  let err s =
    match Trace.Model.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" s
  in
  err "{";
  err "{\"schema\":\"bogus\"}";
  err "{\"schema\":\"vm1dp-trace/1\"}";
  err
    "{\"schema\":\"vm1dp-trace/1\",\"spans\":[{\"name\":\"x\"}],\
     \"counters\":{},\"gauges\":{},\"histograms\":{}}"

let test_prune () =
  let t = mini () in
  let p = Trace.Model.prune ~prefixes:[ "opt" ] t in
  (* opt disappears; its two distopt.window children are spliced into
     flow, keeping flow's own child count - 1 + 2 *)
  let flow = List.hd p.spans in
  Alcotest.(check int) "spliced" 3 (List.length flow.children);
  let names = List.map (fun (s : Trace.Model.span) -> s.name) flow.children in
  Alcotest.(check (list string)) "order"
    [ "prepare"; "distopt.window"; "distopt.window" ]
    names

(* --- profile -------------------------------------------------------- *)

let test_profile () =
  let rows = Trace.Profile.rows (mini ()) in
  let row name =
    match
      List.find_opt (fun (r : Trace.Profile.row) -> String.equal r.name name) rows
    with
    | Some r -> r
    | None -> Alcotest.failf "no row %s" name
  in
  let w = row "distopt.window" in
  Alcotest.(check int) "calls" 3 w.calls;
  Alcotest.(check int) "total" 950 w.total_ns;
  Alcotest.(check int) "self" 950 w.self_ns;
  Alcotest.(check int) "p50" 300 w.p50_ns;
  Alcotest.(check int) "p90" 400 w.p90_ns;
  let f = row "flow" in
  Alcotest.(check int) "flow self" 100 f.self_ns;
  (* sorted by total desc *)
  Alcotest.(check string) "hottest first" "flow"
    (List.hd rows).Trace.Profile.name

(* --- goldens -------------------------------------------------------- *)

let test_golden_report () =
  Alcotest.(check string) "report json"
    (read_file "golden_report.json")
    (Obs.Json.to_string (Trace.Profile.to_json (mini ())) ^ "\n")

let test_golden_flame () =
  Alcotest.(check string) "folded"
    (read_file "golden_flame.txt")
    (Trace.Export.folded (mini ()))

let test_golden_speedscope () =
  Alcotest.(check string) "speedscope"
    (read_file "golden_speedscope.json")
    (Obs.Json.to_string (Trace.Export.speedscope (mini ())) ^ "\n")

(* --- critical path -------------------------------------------------- *)

let test_critical_path_mini () =
  let steps = Trace.Critical_path.compute (mini ()) in
  (* the overlapped worker-domain root must not appear: it is fully
     hidden under flow; the 100ns root-level gap is unattributed *)
  Alcotest.(check int) "total" 1400 (Trace.Critical_path.total_ns steps);
  let depth0 =
    List.filter_map
      (fun (s : Trace.Critical_path.step) ->
        if s.depth = 0 then Some s.name else None)
      steps
  in
  Alcotest.(check (list string)) "root chain" [ "flow"; "route" ] depth0

(* Random span forests: children nest strictly inside their parent and
   siblings may overlap (as worker-domain spans do). *)
let gen_forest =
  let open QCheck in
  let rec gen_span depth lo hi =
    let open Gen in
    int_range lo (max lo (hi - 1)) >>= fun start ->
    int_range 1 (max 1 (hi - start)) >>= fun dur ->
    (if depth >= 3 then return []
     else
       int_range 0 2 >>= fun n ->
       list_size (return n) (gen_span (depth + 1) start (start + dur)))
    >>= fun children ->
    return
      { Trace.Model.name = "s"; start_ns = start; dur_ns = dur; attrs = [];
        children }
  in
  let gen =
    let open Gen in
    int_range 1 4 >>= fun n ->
    list_size (return n) (gen_span 0 0 1000) >>= fun spans ->
    return
      { Trace.Model.spans; counters = []; gauges = []; histograms = [] }
  in
  make gen

let test_critical_path_bounds =
  QCheck.Test.make ~count:500 ~name:"critical path bounded by wall clock"
    gen_forest (fun t ->
      let total = Trace.Critical_path.total_ns (Trace.Critical_path.compute t) in
      total >= 0 && total <= Trace.Model.wall_ns t)

let test_critical_path_vs_children =
  QCheck.Test.make ~count:500
    ~name:"single root: path = root wall >= any child subpath" gen_forest
    (fun t ->
      match t.Trace.Model.spans with
      | [] -> true
      | root :: _ ->
        let single = { t with Trace.Model.spans = [ root ] } in
        let total =
          Trace.Critical_path.total_ns (Trace.Critical_path.compute single)
        in
        let sub =
          Trace.Critical_path.total_ns
            (Trace.Critical_path.compute
               { t with Trace.Model.spans = root.Trace.Model.children })
        in
        total = root.Trace.Model.dur_ns && total >= sub)

(* --- diff ----------------------------------------------------------- *)

let span ?(children = []) name start_ns dur_ns =
  { Trace.Model.name; start_ns; dur_ns; attrs = []; children }

let trace ?(counters = []) ?(gauges = []) spans =
  { Trace.Model.spans; counters; gauges; histograms = [] }

let test_diff_self () =
  let t = mini () in
  let v = Trace.Diff.run Trace.Diff.default ~baseline:t ~current:t in
  Alcotest.(check bool) "self pass" true v.pass;
  Alcotest.(check int) "no issues" 0 (List.length v.issues)

let test_diff_boundary () =
  (* limit = 1000 * (1 + 0.5) + 100 = 1600.0: exactly 1600 passes, 1601
     fails — the band is boundary-exact *)
  let config =
    { Trace.Diff.default with time_rel = 0.5; time_abs_ns = 100 }
  in
  let base = trace [ span "a" 0 1000 ] in
  let at d =
    (Trace.Diff.run config ~baseline:base ~current:(trace [ span "a" 0 d ]))
      .pass
  in
  Alcotest.(check bool) "at limit" true (at 1600);
  Alcotest.(check bool) "one past limit" false (at 1601);
  Alcotest.(check bool) "faster is fine" true (at 10)

let test_diff_structure () =
  let base = trace [ span "a" 0 100 ~children:[ span "b" 0 50 ] ] in
  let fail t =
    not (Trace.Diff.run Trace.Diff.default ~baseline:base ~current:t).pass
  in
  Alcotest.(check bool) "missing child" true
    (fail (trace [ span "a" 0 100 ]));
  Alcotest.(check bool) "new span" true
    (fail
       (trace [ span "a" 0 100 ~children:[ span "b" 0 50; span "c" 60 10 ] ]));
  (* b moving from child of a to root is an edge change even though the
     name multiset is unchanged *)
  Alcotest.(check bool) "edge change" true
    (fail (trace [ span "a" 0 100; span "b" 0 50 ]))

let test_diff_counters_and_ignore () =
  let base =
    trace ~counters:[ ("exec.tasks", 10); ("scp.moves", 5) ] [ span "a" 0 100 ]
  in
  let cur =
    trace ~counters:[ ("exec.tasks", 99); ("scp.moves", 5) ] [ span "a" 0 100 ]
  in
  let strict = Trace.Diff.run Trace.Diff.default ~baseline:base ~current:cur in
  Alcotest.(check bool) "counter drift fails" false strict.pass;
  let ignoring =
    Trace.Diff.run
      { Trace.Diff.default with ignore_prefixes = [ "exec." ] }
      ~baseline:base ~current:cur
  in
  Alcotest.(check bool) "ignored prefix passes" true ignoring.pass

let test_diff_gauge_band () =
  let base = trace ~gauges:[ ("g", 100.0) ] [ span "a" 0 100 ] in
  let at v =
    (Trace.Diff.run
       { Trace.Diff.default with gauge_rel = 0.1; gauge_abs = 0.0 }
       ~baseline:base
       ~current:(trace ~gauges:[ ("g", v) ] [ span "a" 0 100 ]))
      .pass
  in
  Alcotest.(check bool) "within band" true (at 110.0);
  Alcotest.(check bool) "outside band" false (at 110.1);
  Alcotest.(check bool) "below band" false (at 88.0)

(* --- attribute ------------------------------------------------------ *)

let test_attribute () =
  let a = Trace.Attribute.compute (mini ()) in
  Alcotest.(check int) "windows" 2 (List.length a.windows);
  let w0 = List.hd a.windows in
  Alcotest.(check int) "solves folds worker root" 2 w0.solves;
  Alcotest.(check int) "moves" 4 w0.moves;
  Alcotest.(check int) "dHPWL" (-104) w0.d_hpwl_dbu;
  Alcotest.(check int) "dAlign" 2 w0.d_align;
  Alcotest.(check int) "overflow join" 4 w0.overflow;
  (match a.heatmap with
  | None -> Alcotest.fail "no heatmap"
  | Some h ->
    Alcotest.(check int) "tiles" 4 (Array.length h.counts);
    let ascii = Trace.Attribute.render_heatmap h in
    Alcotest.(check bool) "renders rows" true
      (String.length ascii > 0 && String.contains ascii '|'));
  Alcotest.(check int) "net rows" 2 (List.length a.nets);
  let n7 =
    List.find (fun (n : Trace.Attribute.net_row) -> n.net_id = 7) a.nets
  in
  Alcotest.(check int) "failed subnets" 1 n7.failed_subnets

(* --- schemas -------------------------------------------------------- *)

let test_schemas_roundtrip () =
  List.iter
    (fun id ->
      let s = Obs.Schemas.to_string id in
      match Obs.Schemas.of_string s with
      | Some id' ->
        Alcotest.(check string) "roundtrip" s (Obs.Schemas.to_string id')
      | None -> Alcotest.failf "%s does not round-trip" s)
    Obs.Schemas.all;
  Alcotest.(check (option string)) "unknown rejected" None
    (Option.map Obs.Schemas.to_string (Obs.Schemas.of_string "vm1dp-nope/9"));
  (* every emitter's schema field parses back through the registry *)
  let tagged j =
    match Obs.Json.member "schema" j with
    | Some (Obs.Json.Str s) -> Obs.Schemas.of_string s <> None
    | _ -> false
  in
  Alcotest.(check bool) "trace report emitter" true
    (tagged (Trace.Profile.to_json (mini ())));
  let manifest =
    {
      Io.Manifest.m_name = "tagcheck";
      entries =
        [
          {
            Io.Manifest.e_id = "m0";
            source = Io.Manifest.Generate Netlist.Designs.M0;
          };
        ];
      archs = [ Pdk.Cell_arch.Closed_m1 ];
      utils = [ 0.75 ];
      scales = [ 64 ];
    }
  in
  Alcotest.(check bool) "bench-manifest emitter" true
    (tagged (Io.Manifest.to_json manifest));
  let matrix =
    {
      Report.Matrix.manifest_name = "tagcheck";
      manifest_digest = "0";
      cells = [];
    }
  in
  Alcotest.(check bool) "expt-matrix emitter" true
    (tagged (Report.Matrix.to_json matrix))

let () =
  Alcotest.run "trace"
    [
      ( "model",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "prune splices" `Quick test_prune;
        ] );
      ( "profile",
        [
          Alcotest.test_case "aggregate" `Quick test_profile;
          Alcotest.test_case "golden report" `Quick test_golden_report;
        ] );
      ( "export",
        [
          Alcotest.test_case "golden folded" `Quick test_golden_flame;
          Alcotest.test_case "golden speedscope" `Quick test_golden_speedscope;
        ] );
      ( "critical-path",
        [
          Alcotest.test_case "mini" `Quick test_critical_path_mini;
          QCheck_alcotest.to_alcotest test_critical_path_bounds;
          QCheck_alcotest.to_alcotest test_critical_path_vs_children;
        ] );
      ( "diff",
        [
          Alcotest.test_case "self" `Quick test_diff_self;
          Alcotest.test_case "boundary flip" `Quick test_diff_boundary;
          Alcotest.test_case "structure" `Quick test_diff_structure;
          Alcotest.test_case "counters/ignore" `Quick
            test_diff_counters_and_ignore;
          Alcotest.test_case "gauge band" `Quick test_diff_gauge_band;
        ] );
      ("attribute", [ Alcotest.test_case "mini" `Quick test_attribute ]);
      ("schemas", [ Alcotest.test_case "roundtrip" `Quick test_schemas_roundtrip ]);
    ]
