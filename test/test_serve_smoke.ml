(* Checker for the @serve-smoke alias: vm1d.exe has served the three
   jobs in serve_smoke_jobs.txt (the second a byte-for-byte duplicate of
   the first) over stdin; this program validates the captured reply
   stream. The daemon's exit code is checked by the dune rule itself.

   Usage: test_serve_smoke.exe REPLIES.txt *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ -> fail "usage: test_serve_smoke.exe REPLIES.txt"
  in
  let ic = open_in path in
  let lines = In_channel.input_lines ic in
  close_in ic;
  let replies =
    List.map
      (fun line ->
        match Serve.Protocol.parse_reply line with
        | Ok r -> (r, line)
        | Error msg -> fail "unparsable reply %S: %s" line msg)
      lines
  in
  (match List.map (fun (r, _) -> r.Serve.Protocol.p_status) replies with
  | [ "ok"; "ok"; "ok" ] -> ()
  | statuses ->
    fail "expected 3 ok replies, got [%s]" (String.concat "; " statuses));
  let ids =
    List.map
      (fun (r, _) -> Option.value ~default:"?" r.Serve.Protocol.p_id)
      replies
  in
  if ids <> [ "a"; "b"; "c" ] then
    fail "reply order wrong: [%s]" (String.concat "; " ids);
  let nth n = List.nth replies n in
  let result n =
    match (fst (nth n)).Serve.Protocol.p_result with
    | Some j -> Obs.Json.to_string j
    | None -> fail "reply %d has no result" n
  in
  let all_hit n = List.for_all snd (fst (nth n)).Serve.Protocol.p_cache in
  if all_hit 0 then fail "first job cannot be a full cache hit";
  if not (all_hit 1) then fail "duplicate job missed the artifact cache";
  if not (String.equal (result 0) (result 1)) then
    fail "duplicate job produced different result bytes";
  if String.equal (result 0) (result 2) then
    fail "distinct jobs (alpha override) produced identical results";
  print_endline "serve smoke OK"
