(* Tests for the core contribution: alignment predicates, objective,
   window partitioning, SCP candidates, solvers (greedy vs exact vs MILP),
   DistOpt and the VM1Opt metaheuristic. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-6))

let closed_tech = Pdk.Tech.default Pdk.Cell_arch.Closed_m1
let open_tech = Pdk.Tech.default Pdk.Cell_arch.Open_m1
let closed_lib = Pdk.Libgen.generate closed_tech
let open_lib = Pdk.Libgen.generate open_tech
let closed_params = Vm1.Params.default closed_tech
let open_params = Vm1.Params.default open_tech

let placed ?(n = 250) ?(seed = 9) ?(utilization = 0.72) lib =
  let d =
    Netlist.Generator.generate lib
      (Netlist.Generator.default_config ~n_instances:n ~seed)
      ~name:"t"
  in
  let p = Place.Placement.create d ~utilization in
  Place.Global.place p;
  p

let whole_die_problem ?(lx = 3) ?(ly = 1) ?(allow_flip = false) p params =
  let movable = List.init (Place.Placement.num_instances p) (fun i -> i) in
  Vm1.Wproblem.extract p params ~site_lo:0 ~row_lo:0
    ~bw:p.Place.Placement.sites_per_row ~bh:p.Place.Placement.num_rows ~movable
    ~lx ~ly ~allow_flip ~allow_move:true

(* --- Params --- *)

let test_params_defaults () =
  checkf "alpha closed" 1200.0 closed_params.Vm1.Params.alpha;
  checkf "alpha open" 1000.0 open_params.Vm1.Params.alpha;
  checkf "beta" 1.0 closed_params.Vm1.Params.beta;
  check "gamma" 3 closed_params.Vm1.Params.gamma;
  check "closed gamma" 1 closed_params.Vm1.Params.closed_gamma

let test_params_sequences () =
  check "seq1 length" 1 (List.length (Vm1.Params.sequence 1));
  check "seq2 length" 3 (List.length (Vm1.Params.sequence 2));
  check "seq5 length" 4 (List.length (Vm1.Params.sequence 5));
  Alcotest.check_raises "seq 6 raises"
    (Invalid_argument "Params.sequence: no sequence 6") (fun () ->
      ignore (Vm1.Params.sequence 6))

(* --- Align --- *)

let geom ax y = { Vm1.Align.ax; x_lo = ax - 9; x_hi = ax + 9; y }

let test_aligned_closed () =
  let h = closed_tech.Pdk.Tech.row_height in
  checkb "same track adjacent row" true
    (Vm1.Align.aligned closed_params closed_tech (geom 54 135) (geom 54 (135 + h)));
  checkb "same track two rows apart" false
    (Vm1.Align.aligned closed_params closed_tech (geom 54 135) (geom 54 (135 + 2 * h)));
  checkb "different track" false
    (Vm1.Align.aligned closed_params closed_tech (geom 54 135) (geom 90 (135 + h)));
  checkb "same point not aligned" false
    (Vm1.Align.aligned closed_params closed_tech (geom 54 135) (geom 54 135))

let test_overlap_open () =
  let h = open_tech.Pdk.Tech.row_height in
  let wide ax y = { Vm1.Align.ax; x_lo = ax - 50; x_hi = ax + 50; y } in
  let d, o =
    Vm1.Align.overlap open_params open_tech (wide 100 60) (wide 120 (60 + h))
  in
  checkb "overlapping pins" true d;
  check "overlap length beyond delta" (80 - open_params.Vm1.Params.delta) o;
  (* too far vertically: gamma rows is the limit *)
  let d2, _ =
    Vm1.Align.overlap open_params open_tech (wide 100 60)
      (wide 100 (60 + ((open_params.Vm1.Params.gamma + 1) * h)))
  in
  checkb "beyond gamma" false d2;
  (* tiny overlap below delta *)
  let d3, o3 =
    Vm1.Align.overlap open_params open_tech (wide 100 60) (wide 195 (60 + h))
  in
  checkb "below delta" false d3;
  check "zero overlap credit" 0 o3

let test_pair_gain () =
  let h = closed_tech.Pdk.Tech.row_height in
  checkf "closed gain is alpha" closed_params.Vm1.Params.alpha
    (Vm1.Align.pair_gain closed_params closed_tech (geom 54 135) (geom 54 (135 + h)));
  checkf "no gain" 0.0
    (Vm1.Align.pair_gain closed_params closed_tech (geom 54 135) (geom 90 (135 + h)))

let test_align_of_candidate_matches_placed () =
  let p = placed closed_lib in
  (* for every pin: of_candidate at the current site/row/orient equals
     of_placed *)
  for i = 0 to 40 do
    let inst = p.Place.Placement.design.Netlist.Design.instances.(i) in
    List.iteri
      (fun k _ ->
        let pr = { Netlist.Design.inst = i; pin = k } in
        let a = Vm1.Align.of_placed p pr in
        let b =
          Vm1.Align.of_candidate p pr
            ~site:(Place.Placement.site_of_inst p i)
            ~row:(Place.Placement.row_of_inst p i)
            ~orient:p.Place.Placement.orients.(i)
        in
        checkb "geom equal" true (a = b))
      inst.master.Pdk.Stdcell.pins
  done

(* --- Objective --- *)

let test_objective_hpwl_matches_place () =
  let p = placed closed_lib in
  let c = Vm1.Objective.counts closed_params p in
  check "hpwl agrees with Place.Hpwl" (Place.Hpwl.total p) c.Vm1.Objective.hpwl_dbu

let test_objective_value_formula () =
  let p = placed closed_lib in
  let c = Vm1.Objective.counts closed_params p in
  let expected =
    (closed_params.Vm1.Params.beta *. float_of_int c.Vm1.Objective.hpwl_dbu)
    -. (closed_params.Vm1.Params.alpha *. float_of_int c.Vm1.Objective.alignments)
    -. (closed_params.Vm1.Params.epsilon *. float_of_int c.Vm1.Objective.overlap_sum)
  in
  checkf "value formula" expected (Vm1.Objective.value closed_params p)

let test_net_pairs () =
  let p = placed closed_lib in
  let d = p.Place.Placement.design in
  List.iter
    (fun n ->
      let deg = Netlist.Design.net_degree d n in
      let pairs = Vm1.Objective.net_pairs d n in
      checkb "pair count bounded" true
        (List.length pairs <= deg * (deg - 1) / 2);
      List.iter
        (fun ((a : Netlist.Design.pin_ref), (b : Netlist.Design.pin_ref)) ->
          checkb "distinct instances" true (a.inst <> b.inst))
        pairs)
    (Netlist.Design.signal_nets d)

(* --- Window --- *)

let test_partition_covers_all_interior_cells () =
  let p = placed closed_lib in
  let ws = Vm1.Window.partition p ~tx:0 ~ty:0 ~bw:40 ~bh:6 in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun (w : Vm1.Window.t) ->
      List.iter
        (fun i ->
          checkb "each cell in one window" false (Hashtbl.mem seen i);
          Hashtbl.replace seen i ())
        w.movable)
    ws;
  (* every movable cell is fully inside its window *)
  Array.iter
    (fun (w : Vm1.Window.t) ->
      List.iter
        (fun i ->
          let s = Place.Placement.site_of_inst p i in
          let width =
            p.Place.Placement.design.Netlist.Design.instances.(i)
              .master.Pdk.Stdcell.width_sites
          in
          let r = Place.Placement.row_of_inst p i in
          checkb "inside x" true
            (s >= w.site_lo && s + width - 1 <= w.site_lo + w.bw - 1);
          checkb "inside y" true (r >= w.row_lo && r <= w.row_lo + w.bh - 1))
        w.movable)
    ws

let test_diagonal_batches_disjoint () =
  let p = placed closed_lib in
  let ws = Vm1.Window.partition p ~tx:7 ~ty:1 ~bw:30 ~bh:4 in
  let batches = Vm1.Window.diagonal_batches ws in
  List.iter
    (fun batch ->
      Array.iteri
        (fun i (a : Vm1.Window.t) ->
          Array.iteri
            (fun j (b : Vm1.Window.t) ->
              if i < j then begin
                checkb "disjoint ix" true (a.ix <> b.ix);
                checkb "disjoint iy" true (a.iy <> b.iy)
              end)
            batch)
        batch)
    batches;
  (* batches partition the windows *)
  let total = List.fold_left (fun acc b -> acc + Array.length b) 0 batches in
  check "batches cover windows" (Array.length ws) total

(* --- Wproblem --- *)

let test_candidates_respect_ranges () =
  let p = placed closed_lib in
  let t = whole_die_problem ~lx:3 ~ly:1 p closed_params in
  Array.iter
    (fun (c : Vm1.Wproblem.cell) ->
      let cand0 = c.cands.(0) in
      Array.iter
        (fun (cand : Vm1.Wproblem.candidate) ->
          checkb "x range" true (abs (cand.site - cand0.site) <= 3);
          checkb "y range" true (abs (cand.row - cand0.row) <= 1);
          checkb "no flip candidates" true
            (Geom.Orient.equal cand.orient cand0.orient))
        c.cands)
    t.cells

let test_flip_only_candidates () =
  let p = placed closed_lib in
  let movable = List.init (Place.Placement.num_instances p) (fun i -> i) in
  let t =
    Vm1.Wproblem.extract p closed_params ~site_lo:0 ~row_lo:0
      ~bw:p.Place.Placement.sites_per_row ~bh:p.Place.Placement.num_rows
      ~movable ~lx:0 ~ly:0 ~allow_flip:true ~allow_move:false
  in
  Array.iter
    (fun (c : Vm1.Wproblem.cell) ->
      checkb "at most two candidates" true (Array.length c.cands <= 2);
      Array.iter
        (fun (cand : Vm1.Wproblem.candidate) ->
          check "same site" c.cands.(0).site cand.site;
          check "same row" c.cands.(0).row cand.row)
        c.cands)
    t.cells

let test_objective_consistent_with_move_delta () =
  let p = placed closed_lib in
  let t = whole_die_problem p closed_params in
  let before = Vm1.Wproblem.objective t in
  (* apply a random feasible move and compare delta with full recompute *)
  let moved = ref false in
  (try
     Array.iteri
       (fun cell (c : Vm1.Wproblem.cell) ->
         for cand = 0 to Array.length c.cands - 1 do
           if
             (not !moved) && cand <> c.cur
             && Vm1.Wproblem.candidate_free t ~cell ~cand
           then begin
             let d = Vm1.Wproblem.move_delta t ~cell ~cand in
             Vm1.Wproblem.apply t ~cell ~cand;
             let after = Vm1.Wproblem.objective t in
             Alcotest.(check (float 0.001)) "delta = recompute" (after -. before) d;
             moved := true;
             raise Exit
           end
         done)
       t.cells
   with Exit -> ());
  checkb "a move happened" true !moved

let test_commit_writes_back_legal () =
  let p = placed closed_lib in
  let t = whole_die_problem p closed_params in
  ignore (Vm1.Scp_solver.solve ~mode:`Greedy t);
  Vm1.Wproblem.commit t;
  Alcotest.(check (list string)) "legal after commit" [] (Place.Legalize.check p)

let test_shove_plans_stay_legal () =
  let p = placed ~utilization:0.8 closed_lib in
  let t = whole_die_problem p closed_params in
  ignore (Vm1.Scp_solver.solve ~mode:`Greedy t);
  Vm1.Wproblem.commit t;
  Alcotest.(check (list string)) "legal with shoves at 80%" []
    (Place.Legalize.check p)

(* --- Scp_solver --- *)

let test_greedy_never_worsens () =
  let p = placed closed_lib in
  let t = whole_die_problem p closed_params in
  let stats = Vm1.Scp_solver.solve ~mode:`Greedy t in
  checkb "objective not worse" true
    (stats.Vm1.Scp_solver.objective_after
     <= stats.Vm1.Scp_solver.objective_before +. 1e-6)

let tiny_window p params =
  (* a small real window cut from a placement, with few cells *)
  let ws = Vm1.Window.partition p ~tx:0 ~ty:0 ~bw:14 ~bh:2 in
  let w =
    Array.to_list ws
    |> List.filter (fun (w : Vm1.Window.t) ->
           let k = List.length w.movable in
           k >= 2 && k <= 4)
    |> List.hd
  in
  Vm1.Wproblem.extract p params ~site_lo:w.site_lo ~row_lo:w.row_lo ~bw:w.bw
    ~bh:w.bh ~movable:w.movable ~lx:2 ~ly:1 ~allow_flip:false ~allow_move:true

let test_exact_beats_or_ties_greedy () =
  let p = placed closed_lib in
  let t1 = tiny_window p closed_params in
  let g = Vm1.Scp_solver.solve ~mode:`Greedy t1 in
  let p2 = placed closed_lib in
  let t2 = tiny_window p2 closed_params in
  let e = Vm1.Scp_solver.solve ~mode:`Exact t2 in
  checkb "exact <= greedy" true
    (e.Vm1.Scp_solver.objective_after
     <= g.Vm1.Scp_solver.objective_after +. 1e-6)

let test_anneal_not_worse_than_greedy () =
  let p1 = placed closed_lib in
  let t1 = whole_die_problem p1 closed_params in
  let sg = Vm1.Scp_solver.solve ~mode:`Greedy t1 in
  let p2 = placed closed_lib in
  let t2 = whole_die_problem p2 closed_params in
  let sa = Vm1.Scp_solver.solve ~mode:`Anneal t2 in
  checkb "anneal <= greedy" true
    (sa.Vm1.Scp_solver.objective_after
     <= sg.Vm1.Scp_solver.objective_after +. 1e-6);
  (* committing the annealed result must stay legal *)
  Vm1.Wproblem.commit t2;
  Alcotest.(check (list string)) "legal" [] (Place.Legalize.check p2)

let test_anneal_deterministic () =
  let run () =
    let p = placed closed_lib in
    let t = whole_die_problem p closed_params in
    let s = Vm1.Scp_solver.solve ~mode:`Anneal t in
    s.Vm1.Scp_solver.objective_after
  in
  Alcotest.(check (float 1e-9)) "same objective" (run ()) (run ())

let test_exact_refuses_large () =
  let p = placed closed_lib in
  let t = whole_die_problem p closed_params in
  checkb "search space saturates" true
    (Vm1.Scp_solver.exact_search_space t > Vm1.Scp_solver.exact_limit);
  Alcotest.check_raises "refuses"
    (Invalid_argument "Scp_solver: window too large for exact search")
    (fun () -> ignore (Vm1.Scp_solver.solve ~mode:`Exact t))

(* --- Formulate: the MILP agrees with exhaustive search --- *)

let test_milp_matches_exact_on_tiny_windows () =
  List.iter
    (fun seed ->
      let p = placed ~n:120 ~seed closed_lib in
      let t_exact = tiny_window p closed_params in
      let before = Vm1.Wproblem.objective t_exact in
      let e = Vm1.Scp_solver.solve ~mode:`Exact t_exact in
      (* fresh identical problem for the MILP *)
      let p2 = placed ~n:120 ~seed closed_lib in
      let t_milp = tiny_window p2 closed_params in
      let sol = Vm1.Formulate.solve ~node_limit:20000 t_milp in
      checkb "milp found a solution" true
        (sol.Milp.Bnb.status <> Milp.Bnb.Infeasible);
      let milp_obj = Vm1.Wproblem.objective t_milp in
      Alcotest.(check (float 0.5))
        (Printf.sprintf "seed %d: MILP objective equals exhaustive optimum" seed)
        e.Vm1.Scp_solver.objective_after milp_obj;
      checkb "both improve or tie" true
        (milp_obj <= before +. 1e-6))
    [ 1; 2; 3 ]

let test_milp_matches_exact_with_flip () =
  (* flip candidates flow through the SCP lambda model untouched; the MILP
     must still match exhaustive search when they are enabled *)
  let p = placed ~n:120 ~seed:8 closed_lib in
  let ws = Vm1.Window.partition p ~tx:0 ~ty:0 ~bw:14 ~bh:2 in
  let w =
    Array.to_list ws
    |> List.filter (fun (w : Vm1.Window.t) ->
           let k = List.length w.movable in
           k >= 2 && k <= 3)
    |> List.hd
  in
  let extract pl =
    Vm1.Wproblem.extract pl closed_params ~site_lo:w.site_lo ~row_lo:w.row_lo
      ~bw:w.bw ~bh:w.bh ~movable:w.movable ~lx:2 ~ly:1 ~allow_flip:true
      ~allow_move:true
  in
  let te = extract p in
  let e = Vm1.Scp_solver.solve ~mode:`Exact te in
  let p2 = placed ~n:120 ~seed:8 closed_lib in
  let t2 = extract p2 in
  ignore (Vm1.Formulate.solve ~node_limit:30000 t2);
  Alcotest.(check (float 0.5)) "flip-enabled MILP equals exhaustive"
    e.Vm1.Scp_solver.objective_after (Vm1.Wproblem.objective t2)

let test_milp_matches_exact_openm1 () =
  let p = placed ~n:120 ~seed:4 open_lib in
  let t_exact = tiny_window p open_params in
  let e = Vm1.Scp_solver.solve ~mode:`Exact t_exact in
  let p2 = placed ~n:120 ~seed:4 open_lib in
  let t_milp = tiny_window p2 open_params in
  ignore (Vm1.Formulate.solve ~node_limit:20000 t_milp);
  let milp_obj = Vm1.Wproblem.objective t_milp in
  Alcotest.(check (float 0.5)) "OpenM1 MILP equals exhaustive optimum"
    e.Vm1.Scp_solver.objective_after milp_obj

(* --- Scp_solver portfolio mode --- *)

let test_portfolio_not_worse_than_greedy () =
  (* greedy is one of the racers and the winner is the best objective, so
     the portfolio can never lose to greedy alone *)
  let p = placed ~n:120 closed_lib in
  let tg = whole_die_problem p closed_params in
  let tp = Vm1.Wproblem.clone tg in
  let sg = Vm1.Scp_solver.solve ~mode:`Greedy tg in
  let sp = Vm1.Scp_solver.solve ~mode:`Portfolio tp in
  checkb "portfolio <= greedy" true
    (sp.Vm1.Scp_solver.objective_after
     <= sg.Vm1.Scp_solver.objective_after +. 1e-9);
  checkb "portfolio monotone" true
    (sp.Vm1.Scp_solver.objective_after
     <= sp.Vm1.Scp_solver.objective_before +. 1e-9)

let test_portfolio_deterministic () =
  (* the deadline bounds only where a racer runs, never whether: the
     winner is a pure function of the problem, so repeated runs agree *)
  let run () =
    let p = placed ~n:200 closed_lib in
    let t = whole_die_problem p closed_params in
    ignore (Vm1.Scp_solver.solve ~mode:`Portfolio t);
    Vm1.Wproblem.commit t;
    p
  in
  let p1 = run () and p2 = run () in
  Alcotest.(check (array int)) "same xs" p1.Place.Placement.xs
    p2.Place.Placement.xs;
  Alcotest.(check (array int)) "same ys" p1.Place.Placement.ys
    p2.Place.Placement.ys

(* --- Wcache --- *)

let dummy_stats =
  {
    Vm1.Scp_solver.objective_before = 0.;
    objective_after = 0.;
    moves = 0;
    passes = 1;
  }

let test_wcache_lru_eviction () =
  let c = Vm1.Wcache.create ~capacity:2 () in
  let entry = { Vm1.Wcache.assignment = [| 0 |]; stats = dummy_stats } in
  Vm1.Wcache.add c "a" entry;
  Vm1.Wcache.add c "b" entry;
  (* touch "a" so "b" is the LRU victim when "c" lands *)
  checkb "a hit" true (Vm1.Wcache.find c "a" <> None);
  Vm1.Wcache.add c "c" entry;
  check "capacity bound" 2 (Vm1.Wcache.length c);
  checkb "b evicted" true (Vm1.Wcache.find c "b" = None);
  checkb "a kept" true (Vm1.Wcache.find c "a" <> None);
  checkb "c kept" true (Vm1.Wcache.find c "c" <> None);
  let hits, misses = Vm1.Wcache.stats c in
  check "hits" 3 hits;
  check "misses" 1 misses

let test_wcache_hit_is_miss () =
  (* replaying a memoised assignment into a canonically-equal window
     lands every cell exactly where a fresh solve would *)
  let p1 = placed ~n:150 closed_lib in
  let p2 = placed ~n:150 closed_lib in
  let t1 = whole_die_problem p1 closed_params in
  let t2 = whole_die_problem p2 closed_params in
  let k1 = Vm1.Wcache.key ~mode:`Greedy t1 in
  let k2 = Vm1.Wcache.key ~mode:`Greedy t2 in
  Alcotest.(check string) "equal keys" k1 k2;
  let c = Vm1.Wcache.create () in
  let s1 = Vm1.Scp_solver.solve ~mode:`Greedy t1 in
  Vm1.Wcache.add c k1
    { Vm1.Wcache.assignment = Vm1.Wproblem.assignment t1; stats = s1 };
  (match Vm1.Wcache.find c k2 with
  | None -> Alcotest.fail "expected a cache hit"
  | Some e -> Vm1.Wproblem.set_assignment t2 e.Vm1.Wcache.assignment);
  Vm1.Wproblem.commit t1;
  Vm1.Wproblem.commit t2;
  Alcotest.(check (array int)) "same xs" p1.Place.Placement.xs
    p2.Place.Placement.xs;
  Alcotest.(check (array int)) "same ys" p1.Place.Placement.ys
    p2.Place.Placement.ys

let test_dist_opt_cache_transparent () =
  (* a Dist_opt run with a window cache attached is byte-identical to one
     without, and a warm rerun both hits the cache and reproduces the
     cold run's placement *)
  let cfg wcache =
    {
      Vm1.Dist_opt.tx = 0;
      ty = 0;
      bw = 40;
      bh = 6;
      lx = 3;
      ly = 1;
      allow_flip = false;
      allow_move = true;
      mode = `Greedy;
      parallel = false;
      candidate_cost = None;
      wcache;
    }
  in
  let bare = placed ~n:400 closed_lib in
  ignore (Vm1.Dist_opt.run bare closed_params (cfg None));
  let cache = Vm1.Wcache.create () in
  let cold = placed ~n:400 closed_lib in
  ignore (Vm1.Dist_opt.run cold closed_params (cfg (Some cache)));
  Alcotest.(check (array int)) "cache on = cache off (xs)"
    bare.Place.Placement.xs cold.Place.Placement.xs;
  Alcotest.(check (array int)) "cache on = cache off (ys)"
    bare.Place.Placement.ys cold.Place.Placement.ys;
  checkb "cold pass populated the cache" true (Vm1.Wcache.length cache > 0);
  let warm = placed ~n:400 closed_lib in
  ignore (Vm1.Dist_opt.run warm closed_params (cfg (Some cache)));
  let hits, _ = Vm1.Wcache.stats cache in
  checkb "warm pass hit the cache" true (hits > 0);
  Alcotest.(check (array int)) "warm replay = cold solve (xs)"
    cold.Place.Placement.xs warm.Place.Placement.xs;
  Alcotest.(check (array int)) "warm replay = cold solve (ys)"
    cold.Place.Placement.ys warm.Place.Placement.ys

(* --- Dist_opt / Vm1_opt --- *)

let test_dist_opt_legal_and_improves () =
  let p = placed ~n:400 closed_lib in
  let before = Vm1.Objective.value closed_params p in
  let stats =
    Vm1.Dist_opt.run p closed_params
      {
        Vm1.Dist_opt.tx = 0;
        ty = 0;
        bw = 50;
        bh = 8;
        lx = 3;
        ly = 1;
        allow_flip = false;
        allow_move = true;
        mode = `Greedy;
        parallel = false;
        candidate_cost = None;
        wcache = None;
      }
  in
  let after = Vm1.Objective.value closed_params p in
  checkb "objective not worse" true (after <= before +. 1e-6);
  checkb "some windows" true (stats.Vm1.Dist_opt.windows > 0);
  Alcotest.(check (list string)) "legal" [] (Place.Legalize.check p)

let test_vm1_opt_improves_and_legal () =
  let p = placed ~n:400 closed_lib in
  let report = Vm1.Vm1_opt.run closed_params p in
  checkb "objective improves" true
    (report.Vm1.Vm1_opt.final_objective
     <= report.Vm1.Vm1_opt.initial_objective +. 1e-6);
  checkb "alignments increase" true
    ((Vm1.Objective.counts closed_params p).Vm1.Objective.alignments >= 0);
  Alcotest.(check (list string)) "legal" [] (Place.Legalize.check p)

let test_vm1_opt_deterministic () =
  let p1 = placed ~n:300 closed_lib in
  let p2 = placed ~n:300 closed_lib in
  ignore (Vm1.Vm1_opt.run closed_params p1);
  ignore (Vm1.Vm1_opt.run closed_params p2);
  Alcotest.(check (array int)) "same xs" p1.Place.Placement.xs p2.Place.Placement.xs

let test_vm1_opt_alpha_zero_pure_hpwl () =
  (* with alpha = 0 the optimiser is pure HPWL refinement: HPWL must not
     increase *)
  let p = placed ~n:300 closed_lib in
  let hpwl_before = Place.Hpwl.total p in
  let params = { closed_params with Vm1.Params.alpha = 0.0; epsilon = 0.0 } in
  ignore (Vm1.Vm1_opt.run params p);
  checkb "hpwl not worse" true (Place.Hpwl.total p <= hpwl_before)

let test_parallel_matches_sequential () =
  (* the distributable optimisation must be bit-identical to sequential *)
  let run parallel =
    let p = placed ~n:500 closed_lib in
    let cfg =
      {
        Vm1.Dist_opt.tx = 3;
        ty = 1;
        bw = 40;
        bh = 6;
        lx = 3;
        ly = 1;
        allow_flip = false;
        allow_move = true;
        mode = `Greedy;
        parallel;
        candidate_cost = None;
        wcache = None;
      }
    in
    ignore (Vm1.Dist_opt.run p closed_params cfg);
    p
  in
  let seq = run false and par = run true in
  Alcotest.(check (array int)) "same xs" seq.Place.Placement.xs par.Place.Placement.xs;
  Alcotest.(check (array int)) "same ys" seq.Place.Placement.ys par.Place.Placement.ys;
  Array.iteri
    (fun i o -> checkb "same orient" true (Geom.Orient.equal o par.Place.Placement.orients.(i)))
    seq.Place.Placement.orients

let test_vm1_opt_openm1 () =
  let p = placed ~n:300 open_lib in
  let before = (Vm1.Objective.counts open_params p).Vm1.Objective.alignments in
  ignore (Vm1.Vm1_opt.run open_params p);
  let after = (Vm1.Objective.counts open_params p).Vm1.Objective.alignments in
  checkb "overlapping pairs do not decrease" true (after >= before);
  Alcotest.(check (list string)) "legal" [] (Place.Legalize.check p)

let () =
  Alcotest.run "vm1"
    [
      ( "params",
        [
          Alcotest.test_case "defaults" `Quick test_params_defaults;
          Alcotest.test_case "sequences" `Quick test_params_sequences;
        ] );
      ( "align",
        [
          Alcotest.test_case "closed alignment" `Quick test_aligned_closed;
          Alcotest.test_case "open overlap" `Quick test_overlap_open;
          Alcotest.test_case "pair gain" `Quick test_pair_gain;
          Alcotest.test_case "candidate matches placed" `Quick
            test_align_of_candidate_matches_placed;
        ] );
      ( "objective",
        [
          Alcotest.test_case "hpwl agrees" `Quick test_objective_hpwl_matches_place;
          Alcotest.test_case "value formula" `Quick test_objective_value_formula;
          Alcotest.test_case "net pairs" `Quick test_net_pairs;
        ] );
      ( "window",
        [
          Alcotest.test_case "partition covers" `Quick
            test_partition_covers_all_interior_cells;
          Alcotest.test_case "diagonal batches" `Quick test_diagonal_batches_disjoint;
        ] );
      ( "wproblem",
        [
          Alcotest.test_case "candidate ranges" `Quick test_candidates_respect_ranges;
          Alcotest.test_case "flip-only" `Quick test_flip_only_candidates;
          Alcotest.test_case "delta consistency" `Quick
            test_objective_consistent_with_move_delta;
          Alcotest.test_case "commit legal" `Quick test_commit_writes_back_legal;
          Alcotest.test_case "shoves legal" `Quick test_shove_plans_stay_legal;
        ] );
      ( "scp_solver",
        [
          Alcotest.test_case "greedy monotone" `Quick test_greedy_never_worsens;
          Alcotest.test_case "exact beats greedy" `Quick test_exact_beats_or_ties_greedy;
          Alcotest.test_case "exact refuses large" `Quick test_exact_refuses_large;
          Alcotest.test_case "anneal beats greedy" `Quick test_anneal_not_worse_than_greedy;
          Alcotest.test_case "anneal deterministic" `Quick test_anneal_deterministic;
          Alcotest.test_case "portfolio beats greedy" `Quick
            test_portfolio_not_worse_than_greedy;
          Alcotest.test_case "portfolio deterministic" `Quick
            test_portfolio_deterministic;
        ] );
      ( "formulate",
        [
          Alcotest.test_case "milp = exhaustive (closed)" `Slow
            test_milp_matches_exact_on_tiny_windows;
          Alcotest.test_case "milp = exhaustive (open)" `Slow
            test_milp_matches_exact_openm1;
          Alcotest.test_case "milp = exhaustive (flip)" `Slow
            test_milp_matches_exact_with_flip;
        ] );
      ( "flow",
        [
          Alcotest.test_case "dist_opt" `Quick test_dist_opt_legal_and_improves;
          Alcotest.test_case "wcache lru" `Quick test_wcache_lru_eviction;
          Alcotest.test_case "wcache hit = miss" `Quick test_wcache_hit_is_miss;
          Alcotest.test_case "wcache transparent" `Quick
            test_dist_opt_cache_transparent;
          Alcotest.test_case "vm1_opt" `Quick test_vm1_opt_improves_and_legal;
          Alcotest.test_case "deterministic" `Quick test_vm1_opt_deterministic;
          Alcotest.test_case "alpha=0 pure hpwl" `Quick test_vm1_opt_alpha_zero_pure_hpwl;
          Alcotest.test_case "parallel = sequential" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "openm1" `Quick test_vm1_opt_openm1;
        ] );
    ]
