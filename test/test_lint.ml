(* Fixture tests for the vm1lint rules: each rule must fire on a seeded
   violation (via [Lint.lint_source] on inline sources, so no fixture .ml
   files confuse the build) and stay silent on the sanctioned idiom.
   Also covers suppression comments, the vetted allowlist, path scoping,
   parse errors and the JSON report shape. *)

let lint ?(path = "lib/place/fixture.ml") src = Lint.lint_source ~path src

let rules_of ?path verdict src =
  (lint ?path src).Lint.findings
  |> List.filter_map (fun (v, (f : Lint.finding)) ->
         if v = verdict then Some f.rule else None)

let active_rules ?path src = rules_of ?path Lint.Active src

let check_fires rule src () =
  Alcotest.(check (list string)) ("fires: " ^ rule) [ rule ]
    (active_rules src)

let check_silent src () =
  Alcotest.(check (list string)) "no findings" [] (active_rules src)

(* --- hashtbl-order --- *)

let test_hashtbl_iter =
  check_fires "hashtbl-order"
    "let f tbl = Hashtbl.iter (fun k _ -> print_int k) tbl"

let test_hashtbl_fold_unsorted =
  check_fires "hashtbl-order"
    "let f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []"

let test_hashtbl_fold_sorted_pipe =
  check_silent
    "let f tbl =\n\
    \  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare"

let test_hashtbl_fold_sorted_arg =
  check_silent
    "let f tbl =\n\
    \  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])"

let test_hashtbl_to_seq =
  check_fires "hashtbl-order" "let f tbl = Hashtbl.to_seq tbl"

(* --- poly-compare --- *)

let test_poly_compare = check_fires "poly-compare" "let f a b = compare a b"

let test_poly_compare_qualified =
  check_fires "poly-compare" "let f a b = Stdlib.compare a b"

let test_poly_hash = check_fires "poly-compare" "let f x = Hashtbl.hash x"

let test_typed_compare_ok =
  check_silent "let f a b = Int.compare a b\nlet g a b = String.compare a b"

(* --- phys-eq --- *)

let test_phys_eq = check_fires "phys-eq" "let f a b = a == b"
let test_phys_neq = check_fires "phys-eq" "let f a b = a != b"

let test_phys_eq_exec_exempt () =
  Alcotest.(check (list string)) "lib/exec may use ==" []
    (active_rules ~path:"lib/exec/exec.ml" "let f a b = a == b")

(* --- domain-prims --- *)

let test_domain_outside =
  check_fires "domain-prims" "let d = Domain.spawn (fun () -> 1)"

let test_mutex_outside =
  check_fires "domain-prims" "let m = Mutex.create ()"

let test_atomic_outside =
  check_fires "domain-prims" "let a = Atomic.make 0"

let test_domain_in_exec () =
  Alcotest.(check (list string)) "lib/exec may use Domain" []
    (active_rules ~path:"lib/exec/pool.ml" "let d = Domain.spawn (fun () -> 1)")

let test_atomic_vetted () =
  Alcotest.(check (list string)) "grid.ml Atomic is vetted, not active" []
    (active_rules ~path:"lib/route/grid.ml" "let a = Atomic.make 0");
  Alcotest.(check (list string)) "but reported as vetted" [ "domain-prims" ]
    (rules_of ~path:"lib/route/grid.ml" Lint.Vetted "let a = Atomic.make 0")

(* --- global-random --- *)

let test_global_random = check_fires "global-random" "let x = Random.int 5"

let test_self_init =
  check_fires "global-random" "let st = Random.State.make_self_init ()"

let test_seeded_random_ok =
  check_silent "let f st = Random.State.int st 5"

(* --- wall-clock --- *)

let test_wall_clock =
  check_fires "wall-clock" "let t = Sys.time ()"

let test_wall_clock_report_exempt () =
  Alcotest.(check (list string)) "lib/report may read the clock" []
    (active_rules ~path:"lib/report/flow.ml" "let t = Sys.time ()");
  Alcotest.(check (list string)) "binaries may read the clock" []
    (active_rules ~path:"bin/bench.ml" "let t = Sys.time ()")

(* --- exit-in-lib --- *)

let test_exit_in_lib = check_fires "exit-in-lib" "let f () = exit 1"

let test_exit_in_bin () =
  Alcotest.(check (list string)) "binaries may exit" []
    (active_rules ~path:"bin/vm1opt.ml" "let f () = exit 1")

(* --- obj-magic --- *)

let test_obj_magic = check_fires "obj-magic" "let f x = Obj.magic x"

(* --- readdir-unsorted --- *)

let test_readdir = check_fires "readdir-unsorted" "let l = Sys.readdir \".\""

let test_readdir_sorted_ok =
  check_silent
    "let l = List.sort String.compare (Array.to_list (Sys.readdir \".\"))"

(* --- marshal --- *)

let test_marshal =
  check_fires "marshal" "let s = Marshal.to_string [ 1; 2 ] []"

(* --- suppressions --- *)

let test_suppress_file () =
  let src = "(* vm1lint: allow poly-compare *)\nlet f a b = compare a b" in
  Alcotest.(check (list string)) "no active" [] (active_rules src);
  Alcotest.(check (list string)) "reported as suppressed" [ "poly-compare" ]
    (rules_of Lint.Suppressed src)

let test_suppress_next_line () =
  let src =
    "(* vm1lint: allow-next poly-compare *)\nlet f a b = compare a b"
  in
  Alcotest.(check (list string)) "no active" [] (active_rules src)

let test_suppress_wrong_line () =
  let src =
    "(* vm1lint: allow-next poly-compare *)\nlet g = 1\nlet f a b = compare a b"
  in
  Alcotest.(check (list string)) "suppression does not leak" [ "poly-compare" ]
    (active_rules src)

let test_suppress_other_rule () =
  let src = "(* vm1lint: allow marshal *)\nlet f a b = compare a b" in
  Alcotest.(check (list string)) "wrong rule still active" [ "poly-compare" ]
    (active_rules src)

(* --- parse errors and aggregation --- *)

let test_parse_error () =
  let r = lint "let let = in" in
  Alcotest.(check bool) "parse error recorded" true (r.Lint.parse_error <> None)

let test_active_counts_parse_errors () =
  let run =
    {
      Lint.files_scanned = 1;
      reports = [ ("broken.ml", lint "let let = in") ];
    }
  in
  Alcotest.(check int) "parse error counts as active" 1 (Lint.active run)

let test_rule_count () =
  Alcotest.(check bool) "at least 8 rules" true (List.length Lint.rules >= 8)

let test_json_shape () =
  let run =
    { Lint.files_scanned = 1; reports = [ ("f.ml", lint "let x = compare") ] }
  in
  let j = Lint.to_json run in
  Alcotest.(check string) "schema" Obs.Schemas.lint
    (match Obs.Json.member "schema" j with
    | Some (Obs.Json.Str s) -> s
    | _ -> "missing");
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("report JSON does not round-trip: " ^ e)

(* --- the repository itself lints clean --- *)

let test_repo_clean () =
  let paths =
    List.filter Sys.file_exists [ "../lib"; "../bin"; "../bench" ]
  in
  if paths = [] then ()
  else begin
    let run = Lint.run_paths paths in
    let active_findings =
      List.concat_map
        (fun (_, (r : Lint.report)) ->
          List.filter_map
            (fun (v, (f : Lint.finding)) ->
              if v = Lint.Active then
                Some (Printf.sprintf "%s:%d [%s]" f.file f.line f.rule)
              else None)
            r.findings)
        run.Lint.reports
    in
    Alcotest.(check (list string)) "zero active findings" [] active_findings
  end

let test_no_suppressions_in_core () =
  let paths = List.filter Sys.file_exists [ "../lib/vm1"; "../lib/route" ] in
  let run = Lint.run_paths paths in
  let suppressed =
    List.concat_map
      (fun (path, (r : Lint.report)) ->
        List.filter_map
          (fun (v, _) -> if v = Lint.Suppressed then Some path else None)
          r.findings)
      run.Lint.reports
  in
  Alcotest.(check (list string)) "lib/vm1 and lib/route suppression-free" []
    suppressed

let () =
  Alcotest.run "lint"
    [
      ( "hashtbl-order",
        [
          Alcotest.test_case "iter fires" `Quick test_hashtbl_iter;
          Alcotest.test_case "unsorted fold fires" `Quick
            test_hashtbl_fold_unsorted;
          Alcotest.test_case "fold |> sort is sanctioned" `Quick
            test_hashtbl_fold_sorted_pipe;
          Alcotest.test_case "sort (fold ...) is sanctioned" `Quick
            test_hashtbl_fold_sorted_arg;
          Alcotest.test_case "to_seq fires" `Quick test_hashtbl_to_seq;
        ] );
      ( "poly-compare",
        [
          Alcotest.test_case "bare compare fires" `Quick test_poly_compare;
          Alcotest.test_case "Stdlib.compare fires" `Quick
            test_poly_compare_qualified;
          Alcotest.test_case "Hashtbl.hash fires" `Quick test_poly_hash;
          Alcotest.test_case "typed comparators pass" `Quick
            test_typed_compare_ok;
        ] );
      ( "phys-eq",
        [
          Alcotest.test_case "== fires" `Quick test_phys_eq;
          Alcotest.test_case "!= fires" `Quick test_phys_neq;
          Alcotest.test_case "lib/exec exempt" `Quick test_phys_eq_exec_exempt;
        ] );
      ( "domain-prims",
        [
          Alcotest.test_case "Domain.spawn fires" `Quick test_domain_outside;
          Alcotest.test_case "Mutex fires" `Quick test_mutex_outside;
          Alcotest.test_case "Atomic fires" `Quick test_atomic_outside;
          Alcotest.test_case "lib/exec exempt" `Quick test_domain_in_exec;
          Alcotest.test_case "grid.ml Atomic vetted" `Quick test_atomic_vetted;
        ] );
      ( "global-random",
        [
          Alcotest.test_case "Random.int fires" `Quick test_global_random;
          Alcotest.test_case "make_self_init fires" `Quick test_self_init;
          Alcotest.test_case "seeded state passes" `Quick
            test_seeded_random_ok;
        ] );
      ( "wall-clock",
        [
          Alcotest.test_case "Sys.time fires in pure lib" `Quick
            test_wall_clock;
          Alcotest.test_case "report/bin exempt" `Quick
            test_wall_clock_report_exempt;
        ] );
      ( "exit-in-lib",
        [
          Alcotest.test_case "exit fires in lib" `Quick test_exit_in_lib;
          Alcotest.test_case "bin exempt" `Quick test_exit_in_bin;
        ] );
      ("obj-magic", [ Alcotest.test_case "fires" `Quick test_obj_magic ]);
      ( "readdir-unsorted",
        [
          Alcotest.test_case "fires" `Quick test_readdir;
          Alcotest.test_case "sorted is sanctioned" `Quick
            test_readdir_sorted_ok;
        ] );
      ("marshal", [ Alcotest.test_case "fires" `Quick test_marshal ]);
      ( "suppressions",
        [
          Alcotest.test_case "file-wide allow" `Quick test_suppress_file;
          Alcotest.test_case "allow-next" `Quick test_suppress_next_line;
          Alcotest.test_case "allow-next does not leak" `Quick
            test_suppress_wrong_line;
          Alcotest.test_case "rule-scoped" `Quick test_suppress_other_rule;
        ] );
      ( "report",
        [
          Alcotest.test_case "parse error surfaces" `Quick test_parse_error;
          Alcotest.test_case "parse error is active" `Quick
            test_active_counts_parse_errors;
          Alcotest.test_case ">= 8 rules" `Quick test_rule_count;
          Alcotest.test_case "json schema" `Quick test_json_shape;
        ] );
      ( "repo",
        [
          Alcotest.test_case "repo lints clean" `Quick test_repo_clean;
          Alcotest.test_case "core libs suppression-free" `Quick
            test_no_suppressions_in_core;
        ] );
    ]
