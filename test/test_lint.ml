(* Fixture tests for the vm1lint v2 analyzer: every rule must fire on a
   seeded violation (via [Lint.lint_source] / [Lint.run_sources] on
   inline sources, so no fixture .ml files confuse the build) and stay
   silent on the sanctioned idiom. v2 additions covered here: the
   interprocedural taint fixpoint (witness chains, sanction boundaries,
   functor aliases), the [@vm1.hot] allocation rule (including the
   [@vm1.cold] pruning and the fingerprint scheme), and the ratchet
   baseline (known debt passes, novel findings fail, fixed debt goes
   stale). *)

let lint ?(path = "lib/place/fixture.ml") src = Lint.lint_source ~path src

let rules_of ?path verdict src =
  (lint ?path src).Lint.findings
  |> List.filter_map (fun (v, (f : Lint.finding)) ->
         if v = verdict then Some f.rule else None)

let active_rules ?path src = rules_of ?path Lint.Active src

let active_findings ?path src =
  (lint ?path src).Lint.findings
  |> List.filter_map (fun (v, f) -> if v = Lint.Active then Some f else None)

let check_fires rule src () =
  Alcotest.(check (list string)) ("fires: " ^ rule) [ rule ]
    (active_rules src)

let check_silent src () =
  Alcotest.(check (list string)) "no findings" [] (active_rules src)

(* the fingerprint scheme is a public contract (the committed baseline
   depends on it), so tests recompute it from its documented inputs *)
let fp key = String.sub (Digest.to_hex (Digest.string key)) 0 12

(* --- hashtbl-order --- *)

let test_hashtbl_iter =
  check_fires "hashtbl-order"
    "let f tbl = Hashtbl.iter (fun k _ -> print_int k) tbl"

let test_hashtbl_fold_unsorted =
  check_fires "hashtbl-order"
    "let f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []"

let test_hashtbl_fold_sorted_pipe =
  check_silent
    "let f tbl =\n\
    \  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare"

let test_hashtbl_fold_sorted_arg =
  check_silent
    "let f tbl =\n\
    \  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])"

let test_hashtbl_to_seq =
  check_fires "hashtbl-order" "let f tbl = Hashtbl.to_seq tbl"

(* --- poly-compare --- *)

let test_poly_compare = check_fires "poly-compare" "let f a b = compare a b"

let test_poly_compare_qualified =
  check_fires "poly-compare" "let f a b = Stdlib.compare a b"

let test_poly_hash = check_fires "poly-compare" "let f x = Hashtbl.hash x"

let test_typed_compare_ok =
  check_silent "let f a b = Int.compare a b\nlet g a b = String.compare a b"

(* --- phys-eq --- *)

let test_phys_eq = check_fires "phys-eq" "let f a b = a == b"
let test_phys_neq = check_fires "phys-eq" "let f a b = a != b"

let test_phys_eq_exec_exempt () =
  Alcotest.(check (list string)) "lib/exec may use ==" []
    (active_rules ~path:"lib/exec/exec.ml" "let f a b = a == b")

(* --- domain-prims --- *)

let test_domain_outside =
  check_fires "domain-prims" "let d = Domain.spawn (fun () -> 1)"

let test_mutex_outside =
  check_fires "domain-prims" "let m = Mutex.create ()"

let test_atomic_outside =
  check_fires "domain-prims" "let a = Atomic.make 0"

let test_domain_in_exec () =
  Alcotest.(check (list string)) "lib/exec may use Domain" []
    (active_rules ~path:"lib/exec/pool.ml" "let d = Domain.spawn (fun () -> 1)")

let test_atomic_vetted () =
  Alcotest.(check (list string)) "grid.ml Atomic is vetted, not active" []
    (active_rules ~path:"lib/route/grid.ml" "let a = Atomic.make 0");
  Alcotest.(check (list string)) "but reported as vetted" [ "domain-prims" ]
    (rules_of ~path:"lib/route/grid.ml" Lint.Vetted "let a = Atomic.make 0")

(* --- global-random --- *)

let test_global_random = check_fires "global-random" "let x = Random.int 5"

let test_self_init =
  check_fires "global-random" "let st = Random.State.make_self_init ()"

let test_seeded_random_ok =
  check_silent "let f st = Random.State.int st 5"

(* --- wall-clock --- *)

let test_wall_clock =
  check_fires "wall-clock" "let t = Sys.time ()"

let test_wall_clock_report_exempt () =
  Alcotest.(check (list string)) "lib/report may read the clock" []
    (active_rules ~path:"lib/report/flow.ml" "let t = Sys.time ()");
  Alcotest.(check (list string)) "binaries may read the clock" []
    (active_rules ~path:"bin/bench.ml" "let t = Sys.time ()")

(* --- env-read --- *)

let test_env_read =
  check_fires "env-read" "let v = Sys.getenv \"VM1DP_JOBS\""

let test_env_read_opt =
  check_fires "env-read" "let v = Sys.getenv_opt \"VM1DP_JOBS\""

let test_env_read_bin_exempt () =
  Alcotest.(check (list string)) "binaries may read the environment" []
    (active_rules ~path:"bin/vm1opt.ml" "let v = Sys.getenv \"HOME\"")

(* --- exit-in-lib --- *)

let test_exit_in_lib = check_fires "exit-in-lib" "let f () = exit 1"

let test_exit_in_bin () =
  Alcotest.(check (list string)) "binaries may exit" []
    (active_rules ~path:"bin/vm1opt.ml" "let f () = exit 1")

(* --- obj-magic --- *)

let test_obj_magic = check_fires "obj-magic" "let f x = Obj.magic x"

(* --- readdir-unsorted --- *)

let test_readdir = check_fires "readdir-unsorted" "let l = Sys.readdir \".\""

let test_readdir_sorted_ok =
  check_silent
    "let l = List.sort String.compare (Array.to_list (Sys.readdir \".\"))"

(* --- marshal --- *)

let test_marshal =
  check_fires "marshal" "let s = Marshal.to_string [ 1; 2 ] []"

(* --- suppressions --- *)

let test_suppress_file () =
  let src = "(* vm1lint: allow poly-compare *)\nlet f a b = compare a b" in
  Alcotest.(check (list string)) "no active" [] (active_rules src);
  Alcotest.(check (list string)) "reported as suppressed" [ "poly-compare" ]
    (rules_of Lint.Suppressed src)

let test_suppress_next_line () =
  let src =
    "(* vm1lint: allow-next poly-compare *)\nlet f a b = compare a b"
  in
  Alcotest.(check (list string)) "no active" [] (active_rules src)

let test_suppress_wrong_line () =
  let src =
    "(* vm1lint: allow-next poly-compare *)\nlet g = 1\nlet f a b = compare a b"
  in
  Alcotest.(check (list string)) "suppression does not leak" [ "poly-compare" ]
    (active_rules src)

let test_suppress_other_rule () =
  let src = "(* vm1lint: allow marshal *)\nlet f a b = compare a b" in
  Alcotest.(check (list string)) "wrong rule still active" [ "poly-compare" ]
    (active_rules src)

(* --- interprocedural taint propagation --- *)

(* the ISSUE's motivating case: a clock read two helpers below a pure
   library function must flag every caller on the chain, each with the
   full witness path down to the primitive *)
let clock_chain_src =
  "let h () = Unix.gettimeofday ()\n\
   let g () = h ()\n\
   let f () = g ()"

let test_clock_chain_flags_callers () =
  Alcotest.(check (list string))
    "local + both callers" [ "wall-clock"; "wall-clock"; "wall-clock" ]
    (active_rules clock_chain_src)

let test_clock_chain_witness () =
  let fs = active_findings clock_chain_src in
  let top =
    match List.filter (fun (f : Lint.finding) -> f.fn = "Fixture.f") fs with
    | [ f ] -> f
    | _ -> Alcotest.fail "expected exactly one finding on Fixture.f"
  in
  Alcotest.(check (list string))
    "witness walks the whole chain"
    [ "Fixture.f"; "Fixture.g"; "Fixture.h" ]
    (List.map (fun (fn, _, _) -> fn) top.witness);
  Alcotest.(check string) "interprocedural fingerprint"
    (fp "i|wall-clock|lib/place/fixture.ml|Fixture.f|Unix.gettimeofday")
    top.fingerprint

(* the taint stops at a file where the primitive is sanctioned: a timer
   wrapper in lib/report exports no wall-clock taint, so its lib/place
   caller stays clean (the wrapper is the sanctioned seam) *)
let test_clock_sanctioned_at_boundary () =
  let run =
    Lint.run_sources
      [
        ("lib/report/tick.ml", "let now () = Unix.gettimeofday ()");
        ("lib/place/user.ml", "let f () = Tick.now ()");
      ]
  in
  Alcotest.(check int) "no active findings" 0 (Lint.active run)

(* a Hashtbl fold hidden behind a functor instantiation: the alias
   [module M = Make (...)] must resolve so the caller of [M.dump] is
   flagged, while a caller that sorts the result is sanctioned *)
let functor_src =
  "module Make (X : sig end) = struct\n\
  \  let dump tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n\
   end\n\
   module M = Make (struct end)\n\
   let use tbl = M.dump tbl\n\
   let use_sorted tbl = List.sort Int.compare (M.dump tbl)"

let test_functor_fold_flags_caller () =
  let fs = active_findings functor_src in
  Alcotest.(check (list string))
    "local in the functor, interproc on the caller"
    [ "hashtbl-order"; "hashtbl-order" ]
    (List.map (fun (f : Lint.finding) -> f.rule) fs);
  match List.filter (fun (f : Lint.finding) -> f.fn = "Fixture.use") fs with
  | [ f ] ->
    Alcotest.(check (list string))
      "witness crosses the alias"
      [ "Fixture.use"; "Fixture.Make.dump" ]
      (List.map (fun (fn, _, _) -> fn) f.witness)
  | _ -> Alcotest.fail "expected exactly one finding on Fixture.use"

let test_functor_fold_sorted_caller_clean () =
  let fs = active_findings functor_src in
  Alcotest.(check (list string)) "use_sorted is sanctioned" []
    (List.filter_map
       (fun (f : Lint.finding) ->
         if f.fn = "Fixture.use_sorted" then Some f.fn else None)
       fs)

(* suppressing the primitive also stops the taint at the source *)
let test_suppressed_taint_does_not_propagate () =
  let src =
    "(* vm1lint: allow wall-clock *)\n\
     let h () = Unix.gettimeofday ()\n\
     let f () = h ()"
  in
  Alcotest.(check (list string)) "no active" [] (active_rules src);
  Alcotest.(check (list string)) "source is suppressed" [ "wall-clock" ]
    (rules_of Lint.Suppressed src)

(* --- hot-alloc --- *)

(* an allocation in a callee of a [@vm1.hot] function fires, carries the
   call-path witness, and keys its fingerprint on (file, allocating
   function, kind) — the exact committed-baseline contract *)
let test_hot_callee_alloc () =
  let src = "let mk x = (x, x)\nlet[@vm1.hot] loop x = mk x" in
  match active_findings src with
  | [ f ] ->
    Alcotest.(check string) "rule" "hot-alloc" f.rule;
    Alcotest.(check string) "allocating function" "Fixture.mk" f.fn;
    Alcotest.(check (list string))
      "witness from the hot root to the allocation"
      [ "Fixture.loop"; "Fixture.mk" ]
      (List.map (fun (fn, _, _) -> fn) f.witness);
    Alcotest.(check string) "fingerprint"
      (fp "h|lib/place/fixture.ml|Fixture.mk|tuple")
      f.fingerprint
  | fs ->
    Alcotest.failf "expected exactly one hot-alloc finding, got %d"
      (List.length fs)

let test_hot_own_alloc_fires =
  check_fires "hot-alloc" "let[@vm1.hot] f x = Some x"

let test_hot_cold_branch_pruned =
  check_silent
    "let grow x = (x, x)\n\
     let[@vm1.hot] f x = if x = 0 then begin fst (grow x) end [@vm1.cold] \
     else x"

let test_hot_cold_callee_pruned =
  check_silent
    "let[@vm1.cold] grow x = (x, x)\nlet[@vm1.hot] f x = fst (grow x)"

let test_not_hot_alloc_silent = check_silent "let f x = (x, x)"

(* the deliberately-boxed A* fixture from the ISSUE: a pop loop that
   boxes its scan state in refs and closures must light up *)
let test_boxed_astar_fixture () =
  let src =
    "let[@vm1.hot] astar_pop q =\n\
    \  let best = ref max_int in\n\
    \  List.iter (fun (p, _) -> if p < !best then best := p) q;\n\
    \  List.filter (fun (p, _) -> p <> !best) q"
  in
  let kinds =
    List.sort_uniq String.compare
      (List.map (fun (f : Lint.finding) -> f.message) (active_findings src))
  in
  Alcotest.(check bool) "boxed pop loop fires" true (List.length kinds >= 2);
  let rules =
    List.sort_uniq String.compare
      (List.map (fun (f : Lint.finding) -> f.rule) (active_findings src))
  in
  Alcotest.(check (list string)) "all findings are hot-alloc" [ "hot-alloc" ]
    rules

(* --- the ratchet baseline --- *)

let ratchet_src = "let f a b = compare a b"

let test_baseline_absorbs_known_debt () =
  (* first run: the finding is active; its fingerprint becomes debt *)
  let run1 = Lint.run_sources [ ("lib/place/fixture.ml", ratchet_src) ] in
  Alcotest.(check int) "novel finding is active" 1 (Lint.active run1);
  let baseline = Lint.baseline_entries run1 in
  Alcotest.(check int) "one baseline entry" 1 (List.length baseline);
  (* second run against the baseline: same debt, nothing active *)
  let run2 =
    Lint.run_sources ~baseline [ ("lib/place/fixture.ml", ratchet_src) ]
  in
  Alcotest.(check int) "baselined debt passes" 0 (Lint.active run2);
  Alcotest.(check int) "reported as baselined" 1
    (Lint.count run2 Lint.Baselined);
  Alcotest.(check int) "nothing stale" 0 (List.length run2.Lint.stale)

let test_novel_finding_still_fails () =
  let run1 = Lint.run_sources [ ("lib/place/fixture.ml", ratchet_src) ] in
  let baseline = Lint.baseline_entries run1 in
  let run2 =
    Lint.run_sources ~baseline
      [
        ( "lib/place/fixture.ml",
          ratchet_src ^ "\nlet g tbl = Hashtbl.iter (fun _ _ -> ()) tbl" );
      ]
  in
  Alcotest.(check int) "the old debt is still absorbed" 1
    (Lint.count run2 Lint.Baselined);
  Alcotest.(check int) "the new finding is active" 1 (Lint.active run2)

let test_fixed_debt_goes_stale () =
  let run1 = Lint.run_sources [ ("lib/place/fixture.ml", ratchet_src) ] in
  let baseline = Lint.baseline_entries run1 in
  let run2 =
    Lint.run_sources ~baseline
      [ ("lib/place/fixture.ml", "let f a b = Int.compare a b") ]
  in
  Alcotest.(check int) "nothing active" 0 (Lint.active run2);
  Alcotest.(check int) "the fixed entry is stale" 1
    (List.length run2.Lint.stale)

let test_update_shrinks_baseline () =
  (* --update-baseline semantics: entries are this run's Active +
     Baselined findings, so fixing debt drops its entry *)
  let run1 = Lint.run_sources [ ("lib/place/fixture.ml", ratchet_src) ] in
  let baseline = Lint.baseline_entries run1 in
  let run2 =
    Lint.run_sources ~baseline
      [ ("lib/place/fixture.ml", "let f a b = Int.compare a b") ]
  in
  Alcotest.(check int) "rewritten baseline is empty" 0
    (List.length (Lint.baseline_entries run2))

let test_baseline_round_trip () =
  let run1 = Lint.run_sources [ ("lib/place/fixture.ml", ratchet_src) ] in
  let file = Filename.temp_file "vm1lint_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Lint.save_baseline file run1;
      match Lint.load_baseline file with
      | Error e -> Alcotest.fail ("baseline does not round-trip: " ^ e)
      | Ok b ->
        Alcotest.(check (list string))
          "fingerprints survive the round-trip"
          (List.map fst (Lint.baseline_entries run1))
          (List.map fst b))

(* --- parse errors and aggregation --- *)

let test_parse_error () =
  let r = lint "let let = in" in
  Alcotest.(check bool) "parse error recorded" true (r.Lint.parse_error <> None)

let test_active_counts_parse_errors () =
  let run = Lint.run_sources [ ("broken.ml", "let let = in") ] in
  Alcotest.(check int) "parse error counts as active" 1 (Lint.active run)

let test_rule_count () =
  Alcotest.(check bool) "at least 12 rules" true
    (List.length Lint.rules >= 12)

let test_json_shape () =
  let run = Lint.run_sources [ ("f.ml", "let x = compare") ] in
  let j = Lint.to_json run in
  let str_member k =
    match Obs.Json.member k j with
    | Some (Obs.Json.Str s) -> s
    | _ -> "missing"
  in
  Alcotest.(check string) "schema" Obs.Schemas.lint (str_member "schema");
  Alcotest.(check bool) "call-graph counters present" true
    (Obs.Json.member "functions" j <> None
    && Obs.Json.member "call_edges" j <> None);
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("report JSON does not round-trip: " ^ e)

(* --- the repository itself --- *)

(* tests run in _build/default/test, so the repo sources are one level
   up; skip silently when a sandbox hides them *)
let test_repo_clean_vs_baseline () =
  let paths =
    List.filter Sys.file_exists [ "../lib"; "../bin"; "../bench"; "../test" ]
  in
  if paths = [] || not (Sys.file_exists "../lint_baseline.json") then ()
  else begin
    match Lint.load_baseline "../lint_baseline.json" with
    | Error e -> Alcotest.fail ("committed baseline unreadable: " ^ e)
    | Ok baseline ->
      let run = Lint.run_paths ~baseline paths in
      let actives =
        List.concat_map
          (fun (_, (r : Lint.report)) ->
            List.filter_map
              (fun (v, (f : Lint.finding)) ->
                if v = Lint.Active then
                  Some (Printf.sprintf "%s:%d [%s]" f.file f.line f.rule)
                else None)
              r.findings)
          run.Lint.reports
      in
      Alcotest.(check (list string)) "zero findings beyond the baseline" []
        actives
  end

(* the real router hot path must satisfy the hot-alloc rule without any
   baseline help: Bqueue push/pop/prepare/clear and the A* loop are
   annotated and allocation-free *)
let test_router_hot_path_clean () =
  if not (Sys.file_exists "../lib/route") then ()
  else begin
    let run = Lint.run_paths [ "../lib/route" ] in
    let hot_allocs =
      List.concat_map
        (fun (_, (r : Lint.report)) ->
          List.filter_map
            (fun (v, (f : Lint.finding)) ->
              if v = Lint.Active && f.rule = "hot-alloc" then
                Some (Printf.sprintf "%s:%d %s" f.file f.line f.fn)
              else None)
            r.findings)
        run.Lint.reports
    in
    Alcotest.(check (list string)) "router hot path allocation-free" []
      hot_allocs;
    Alcotest.(check int) "no other active findings either" 0
      (Lint.active run)
  end

let test_no_suppressions_in_core () =
  let paths = List.filter Sys.file_exists [ "../lib/vm1"; "../lib/route" ] in
  let run = Lint.run_paths paths in
  let suppressed =
    List.concat_map
      (fun (path, (r : Lint.report)) ->
        List.filter_map
          (fun (v, _) -> if v = Lint.Suppressed then Some path else None)
          r.findings)
      run.Lint.reports
  in
  Alcotest.(check (list string)) "lib/vm1 and lib/route suppression-free" []
    suppressed

let () =
  Alcotest.run "lint"
    [
      ( "hashtbl-order",
        [
          Alcotest.test_case "iter fires" `Quick test_hashtbl_iter;
          Alcotest.test_case "unsorted fold fires" `Quick
            test_hashtbl_fold_unsorted;
          Alcotest.test_case "fold |> sort is sanctioned" `Quick
            test_hashtbl_fold_sorted_pipe;
          Alcotest.test_case "sort (fold ...) is sanctioned" `Quick
            test_hashtbl_fold_sorted_arg;
          Alcotest.test_case "to_seq fires" `Quick test_hashtbl_to_seq;
        ] );
      ( "poly-compare",
        [
          Alcotest.test_case "bare compare fires" `Quick test_poly_compare;
          Alcotest.test_case "Stdlib.compare fires" `Quick
            test_poly_compare_qualified;
          Alcotest.test_case "Hashtbl.hash fires" `Quick test_poly_hash;
          Alcotest.test_case "typed comparators pass" `Quick
            test_typed_compare_ok;
        ] );
      ( "phys-eq",
        [
          Alcotest.test_case "== fires" `Quick test_phys_eq;
          Alcotest.test_case "!= fires" `Quick test_phys_neq;
          Alcotest.test_case "lib/exec exempt" `Quick test_phys_eq_exec_exempt;
        ] );
      ( "domain-prims",
        [
          Alcotest.test_case "Domain.spawn fires" `Quick test_domain_outside;
          Alcotest.test_case "Mutex fires" `Quick test_mutex_outside;
          Alcotest.test_case "Atomic fires" `Quick test_atomic_outside;
          Alcotest.test_case "lib/exec exempt" `Quick test_domain_in_exec;
          Alcotest.test_case "grid.ml Atomic vetted" `Quick test_atomic_vetted;
        ] );
      ( "global-random",
        [
          Alcotest.test_case "Random.int fires" `Quick test_global_random;
          Alcotest.test_case "make_self_init fires" `Quick test_self_init;
          Alcotest.test_case "seeded state passes" `Quick
            test_seeded_random_ok;
        ] );
      ( "wall-clock",
        [
          Alcotest.test_case "Sys.time fires in pure lib" `Quick
            test_wall_clock;
          Alcotest.test_case "report/bin exempt" `Quick
            test_wall_clock_report_exempt;
        ] );
      ( "env-read",
        [
          Alcotest.test_case "Sys.getenv fires" `Quick test_env_read;
          Alcotest.test_case "Sys.getenv_opt fires" `Quick test_env_read_opt;
          Alcotest.test_case "bin exempt" `Quick test_env_read_bin_exempt;
        ] );
      ( "exit-in-lib",
        [
          Alcotest.test_case "exit fires in lib" `Quick test_exit_in_lib;
          Alcotest.test_case "bin exempt" `Quick test_exit_in_bin;
        ] );
      ("obj-magic", [ Alcotest.test_case "fires" `Quick test_obj_magic ]);
      ( "readdir-unsorted",
        [
          Alcotest.test_case "fires" `Quick test_readdir;
          Alcotest.test_case "sorted is sanctioned" `Quick
            test_readdir_sorted_ok;
        ] );
      ("marshal", [ Alcotest.test_case "fires" `Quick test_marshal ]);
      ( "suppressions",
        [
          Alcotest.test_case "file-wide allow" `Quick test_suppress_file;
          Alcotest.test_case "allow-next" `Quick test_suppress_next_line;
          Alcotest.test_case "allow-next does not leak" `Quick
            test_suppress_wrong_line;
          Alcotest.test_case "rule-scoped" `Quick test_suppress_other_rule;
        ] );
      ( "interproc",
        [
          Alcotest.test_case "clock chain flags callers" `Quick
            test_clock_chain_flags_callers;
          Alcotest.test_case "witness + fingerprint" `Quick
            test_clock_chain_witness;
          Alcotest.test_case "sanctioned at the boundary" `Quick
            test_clock_sanctioned_at_boundary;
          Alcotest.test_case "functor fold flags caller" `Quick
            test_functor_fold_flags_caller;
          Alcotest.test_case "sorted caller clean" `Quick
            test_functor_fold_sorted_caller_clean;
          Alcotest.test_case "suppression stops the taint" `Quick
            test_suppressed_taint_does_not_propagate;
        ] );
      ( "hot-alloc",
        [
          Alcotest.test_case "callee alloc, witness, fingerprint" `Quick
            test_hot_callee_alloc;
          Alcotest.test_case "own alloc fires" `Quick test_hot_own_alloc_fires;
          Alcotest.test_case "cold branch pruned" `Quick
            test_hot_cold_branch_pruned;
          Alcotest.test_case "cold callee pruned" `Quick
            test_hot_cold_callee_pruned;
          Alcotest.test_case "unannotated silent" `Quick
            test_not_hot_alloc_silent;
          Alcotest.test_case "boxed A* fixture fires" `Quick
            test_boxed_astar_fixture;
        ] );
      ( "ratchet",
        [
          Alcotest.test_case "baseline absorbs known debt" `Quick
            test_baseline_absorbs_known_debt;
          Alcotest.test_case "novel finding still fails" `Quick
            test_novel_finding_still_fails;
          Alcotest.test_case "fixed debt goes stale" `Quick
            test_fixed_debt_goes_stale;
          Alcotest.test_case "update shrinks baseline" `Quick
            test_update_shrinks_baseline;
          Alcotest.test_case "baseline round-trips" `Quick
            test_baseline_round_trip;
        ] );
      ( "report",
        [
          Alcotest.test_case "parse error surfaces" `Quick test_parse_error;
          Alcotest.test_case "parse error is active" `Quick
            test_active_counts_parse_errors;
          Alcotest.test_case ">= 12 rules" `Quick test_rule_count;
          Alcotest.test_case "json schema" `Quick test_json_shape;
        ] );
      ( "repo",
        [
          Alcotest.test_case "repo clean vs committed baseline" `Quick
            test_repo_clean_vs_baseline;
          Alcotest.test_case "router hot path allocation-free" `Quick
            test_router_hot_path_clean;
          Alcotest.test_case "core libs suppression-free" `Quick
            test_no_suppressions_in_core;
        ] );
    ]
