(* Tier-1 smoke check on a real emitted trace: run as
   [test_trace_smoke.exe trace.json] after a [vm1opt --trace] run (see
   the rule in test/dune). Validates that the file is well-formed JSON
   and contains the observability the perf workflow relies on: per-batch
   solve spans, SCP move counts, and the router overflow counters. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "smoke_trace.json" in
  let j =
    match Obs.Json.parse (read_file path) with
    | Ok j -> j
    | Error e -> fail "%s: invalid JSON: %s" path e
  in
  if Obs.Json.member "schema" j <> Some (Obs.Json.Str Obs.Schemas.trace) then
    fail "%s: missing or unexpected schema tag" path;
  (* per-batch solve spans somewhere in the span forest *)
  let span_names = Hashtbl.create 64 in
  let rec collect = function
    | Obs.Json.Obj _ as s ->
      (match Obs.Json.member "name" s with
      | Some (Obs.Json.Str n) -> Hashtbl.replace span_names n ()
      | _ -> ());
      (match Obs.Json.member "children" s with
      | Some (Obs.Json.List cs) -> List.iter collect cs
      | _ -> ())
    | _ -> ()
  in
  (match Obs.Json.member "spans" j with
  | Some (Obs.Json.List spans) ->
    if spans = [] then fail "%s: no spans recorded" path;
    List.iter collect spans
  | _ -> fail "%s: no spans array" path);
  List.iter
    (fun required ->
      if not (Hashtbl.mem span_names required) then
        fail "%s: span %S missing from trace" path required)
    [ "distopt.batch"; "distopt.solve"; "route"; "vm1opt.run" ];
  (* SCP move counts and router overflow counters *)
  let counters =
    match Obs.Json.member "counters" j with
    | Some c -> c
    | None -> fail "%s: no counters object" path
  in
  List.iter
    (fun name ->
      match Obs.Json.member name counters with
      | Some (Obs.Json.Int _) -> ()
      | _ -> fail "%s: counter %S missing" path name)
    [ "scp.moves"; "scp.windows_solved"; "route.failed_subnets";
      "route.ripup_nets" ];
  (match Obs.Json.member "gauges" j with
  | Some g ->
    if Obs.Json.member "route.overflow_edges" g = None then
      fail "%s: gauge route.overflow_edges missing" path
  | None -> fail "%s: no gauges object" path);
  print_endline "trace smoke check OK"
