(* The batch service (lib/serve): protocol codec round-trips and
   negative paths, artifact-cache correctness (a cache hit must change
   nothing but latency), grid-skeleton equivalence, and the daemon
   loop's ordering and robustness guarantees. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let job id = Serve.Protocol.generated_job ~id ~scale:64 Netlist.Designs.M0

(* --- protocol codec --- *)

let test_job_roundtrip () =
  let j =
    Serve.Protocol.generated_job ~id:"rt" ~arch:Pdk.Cell_arch.Open_m1
      ~scale:16 ~util:0.8 ~alpha:600. ~sequence:3 ~want_trace:true
      Netlist.Designs.M0
  in
  match Serve.Protocol.parse_job (Serve.Protocol.encode_job j) with
  | Error e -> Alcotest.fail ("round-trip rejected: " ^ e.Serve.Protocol.message)
  | Ok j' ->
    checks "round-trip" (Serve.Protocol.encode_job j)
      (Serve.Protocol.encode_job j')

let test_defaults_applied () =
  match
    Serve.Protocol.parse_job
      {|{"schema":"vm1dp-jobs/1","id":"d","design":"m0"}|}
  with
  | Error e -> Alcotest.fail e.Serve.Protocol.message
  | Ok j ->
    checks "id" "d" j.Serve.Protocol.id;
    (match j.Serve.Protocol.source with
    | Serve.Protocol.Generated { design; scale; util } ->
      checkb "design" true (design = Netlist.Designs.M0);
      check "scale" 8 scale;
      checkb "util" true (util = 0.75)
    | Serve.Protocol.External _ -> Alcotest.fail "expected a generated job");
    checkb "arch" true
      (Pdk.Cell_arch.equal j.Serve.Protocol.arch Pdk.Cell_arch.Closed_m1);
    checkb "alpha" true (j.Serve.Protocol.alpha = None);
    check "sequence" 1 j.Serve.Protocol.sequence;
    checkb "trace" false j.Serve.Protocol.want_trace

let expect_error ~code line =
  match Serve.Protocol.parse_job line with
  | Ok _ -> Alcotest.fail ("accepted: " ^ line)
  | Error e ->
    checks "error code"
      (Serve.Protocol.error_code_string code)
      (Serve.Protocol.error_code_string e.Serve.Protocol.code);
    e

let test_truncated_line () =
  let e = expect_error ~code:Serve.Protocol.Parse_error {|{"schema":"vm1|} in
  checkb "no id extracted" true (e.Serve.Protocol.err_id = None)

let test_not_an_object () =
  ignore (expect_error ~code:Serve.Protocol.Parse_error "42")

let test_unknown_schema () =
  ignore
    (expect_error ~code:Serve.Protocol.Unsupported_schema
       {|{"schema":"vm1dp-jobs/999","id":"x","design":"m0"}|});
  ignore
    (expect_error ~code:Serve.Protocol.Unsupported_schema
       {|{"id":"x","design":"m0"}|})

let test_bad_fields () =
  (* id still extracted so the client can correlate the error reply *)
  let e =
    expect_error ~code:Serve.Protocol.Bad_request
      {|{"schema":"vm1dp-jobs/1","id":"b1","design":"m0","scale":"big"}|}
  in
  checkb "id extracted" true (e.Serve.Protocol.err_id = Some "b1");
  ignore
    (expect_error ~code:Serve.Protocol.Bad_request
       {|{"schema":"vm1dp-jobs/1","id":"b2","design":"nosuch"}|});
  ignore
    (expect_error ~code:Serve.Protocol.Bad_request
       {|{"schema":"vm1dp-jobs/1","id":"b3","design":"m0","util":1.5}|});
  ignore
    (expect_error ~code:Serve.Protocol.Bad_request
       {|{"schema":"vm1dp-jobs/1","id":"b4","design":"m0","sequence":9}|})

let test_external_field_rules () =
  (* exactly one of design / def / def_path *)
  ignore
    (expect_error ~code:Serve.Protocol.Bad_request
       {|{"schema":"vm1dp-jobs/1","id":"x1","design":"m0","def":"DESIGN"}|});
  ignore
    (expect_error ~code:Serve.Protocol.Bad_request
       {|{"schema":"vm1dp-jobs/1","id":"x2","def":"D","def_path":"a.def"}|});
  ignore
    (expect_error ~code:Serve.Protocol.Bad_request
       {|{"schema":"vm1dp-jobs/1","id":"x3"}|});
  (* generator axes are meaningless on a fixed external placement *)
  ignore
    (expect_error ~code:Serve.Protocol.Bad_request
       {|{"schema":"vm1dp-jobs/1","id":"x4","def":"D","scale":4}|});
  ignore
    (expect_error ~code:Serve.Protocol.Bad_request
       {|{"schema":"vm1dp-jobs/1","id":"x5","def_path":"a.def","util":0.7}|})

let test_external_job_roundtrip () =
  List.iter
    (fun source ->
      let j =
        {
          Serve.Protocol.id = "ext";
          source;
          arch = Pdk.Cell_arch.Open_m1;
          alpha = Some 500.;
          sequence = 2;
          solver = None;
          want_trace = false;
        }
      in
      match Serve.Protocol.parse_job (Serve.Protocol.encode_job j) with
      | Error e ->
        Alcotest.fail ("round-trip rejected: " ^ e.Serve.Protocol.message)
      | Ok j' ->
        checks "round-trip" (Serve.Protocol.encode_job j)
          (Serve.Protocol.encode_job j'))
    [
      Serve.Protocol.External (Serve.Protocol.Inline "DESIGN fake ;");
      Serve.Protocol.External (Serve.Protocol.Path "designs/a.def");
    ]

let test_error_reply_roundtrip () =
  let e =
    {
      Serve.Protocol.code = Serve.Protocol.Bad_request;
      message = "no";
      err_id = Some "x";
    }
  in
  match Serve.Protocol.parse_reply (Serve.Protocol.encode_reply (Err e)) with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    checks "status" "error" r.Serve.Protocol.p_status;
    checkb "code" true
      (r.Serve.Protocol.p_error_code = Some "bad_request");
    checkb "id" true (r.Serve.Protocol.p_id = Some "x")

(* --- artifact cache --- *)

let result_bytes = function
  | Serve.Protocol.Ok o -> Obs.Json.to_string (Serve.Protocol.result_json o.result)
  | Serve.Protocol.Err e -> Alcotest.fail e.Serve.Protocol.message

let artifacts = function
  | Serve.Protocol.Ok o -> o.artifacts
  | Serve.Protocol.Err e -> Alcotest.fail e.Serve.Protocol.message

let test_cold_warm_identical () =
  let cache = Serve.Cache.create () in
  let cold = Serve.Engine.run cache (job "c") in
  let warm = Serve.Engine.run cache (job "c") in
  checkb "cold run misses" true (List.for_all (fun (_, h) -> not h) (artifacts cold));
  checkb "warm run hits" true (List.for_all snd (artifacts warm));
  checks "byte-identical results" (result_bytes cold) (result_bytes warm);
  (* and a fresh cache reproduces the same bytes again *)
  let cold2 = Serve.Engine.run (Serve.Cache.create ()) (job "c") in
  checks "reproducible across caches" (result_bytes cold) (result_bytes cold2)

let test_cache_stats_count () =
  let cache = Serve.Cache.create () in
  ignore (Serve.Engine.run cache (job "a"));
  ignore (Serve.Engine.run cache (job "b"));
  List.iter
    (fun (name, hits, misses) ->
      (* generated jobs never consult the external-DEF store *)
      let expected = if String.equal name "external" then 0 else 1 in
      check (name ^ " misses") expected misses;
      check (name ^ " hits") expected hits)
    (Serve.Cache.stats cache)

(* --- external-placement jobs --- *)

let external_job ?(id = "e") source =
  {
    Serve.Protocol.id;
    source = Serve.Protocol.External source;
    arch = Pdk.Cell_arch.Closed_m1;
    alpha = None;
    sequence = 1;
    solver = None;
    want_trace = false;
  }

(* The DEF an external job would round-trip: the same prepared
   placement the generated path computes, emitted by the codec. *)
let external_def_text () =
  let p = Report.Flow.prepare ~scale:64 Netlist.Designs.M0 Pdk.Cell_arch.Closed_m1 in
  Io.Def.write p.Place.Placement.design (Place.Placement.to_def p)

let run_ok reply =
  match reply with
  | Serve.Protocol.Ok { result; artifacts; _ } -> (result, artifacts)
  | Serve.Protocol.Err e -> Alcotest.fail e.Serve.Protocol.message

let test_external_inline_job () =
  let text = external_def_text () in
  let cache = Serve.Cache.create () in
  let result, arts =
    run_ok (Serve.Engine.run cache (external_job (Serve.Protocol.Inline text)))
  in
  checks "design from DEF" "m0" result.Serve.Protocol.r_design;
  checkb "scale is null" true (result.Serve.Protocol.r_scale = None);
  checkb "util is null" true (result.Serve.Protocol.r_util = None);
  checks "resolved stores" "library,external,grid"
    (String.concat "," (List.map fst arts));
  (* the external ingest of our own emitted DEF must optimise to the
     same placement as the generated job it was derived from *)
  let gen, _ = run_ok (Serve.Engine.run (Serve.Cache.create ()) (job "g")) in
  checks "same final digest" gen.Serve.Protocol.digest
    result.Serve.Protocol.digest

let test_external_job_cache_hit () =
  let text = external_def_text () in
  let cache = Serve.Cache.create () in
  let cold, cold_arts =
    run_ok
      (Serve.Engine.run cache
         (external_job ~id:"c1" (Serve.Protocol.Inline text)))
  in
  let warm, warm_arts =
    run_ok
      (Serve.Engine.run cache
         (external_job ~id:"c2" (Serve.Protocol.Inline text)))
  in
  checkb "cold run misses" true (List.for_all (fun (_, h) -> not h) cold_arts);
  checkb "warm run hits" true (List.for_all snd warm_arts);
  checks "byte-identical results"
    (Obs.Json.to_string (Serve.Protocol.result_json cold))
    (Obs.Json.to_string (Serve.Protocol.result_json warm))

let expect_bad_request reply =
  match reply with
  | Serve.Protocol.Ok _ -> Alcotest.fail "expected bad_request"
  | Serve.Protocol.Err e ->
    checks "code" "bad_request"
      (Serve.Protocol.error_code_string e.Serve.Protocol.code)

let test_external_path_job () =
  let path = Filename.temp_file "vm1dp_test" ".def" in
  let oc = open_out_bin path in
  output_string oc (external_def_text ());
  close_out oc;
  let cache = Serve.Cache.create () in
  let result, _ =
    run_ok (Serve.Engine.run cache (external_job (Serve.Protocol.Path path)))
  in
  Sys.remove path;
  checks "design from DEF" "m0" result.Serve.Protocol.r_design;
  (* a dangling path is the client's fault, not an internal error *)
  expect_bad_request
    (Serve.Engine.run cache (external_job (Serve.Protocol.Path path)))

let test_external_rejects_bad_def () =
  let cache = Serve.Cache.create () in
  expect_bad_request
    (Serve.Engine.run cache (external_job (Serve.Protocol.Inline "garbage")));
  (* well-formed DEF, but bound against a library missing its master *)
  let text =
    Str.global_replace (Str.regexp_string "INV_X") "BOGUS_X"
      (external_def_text ())
  in
  expect_bad_request
    (Serve.Engine.run cache (external_job (Serve.Protocol.Inline text)))

(* --- grid skeleton --- *)

let placement scale =
  Report.Flow.prepare ~scale Netlist.Designs.M0 Pdk.Cell_arch.Closed_m1

let test_skeleton_equivalent () =
  let p = placement 64 in
  let s = Route.Grid.skeleton p in
  let plain = Route.Router.route p in
  let seeded =
    Route.Router.route
      ~config:
        { Route.Router.default_config with grid_skeleton = Some s }
      p
  in
  check "failed subnets" plain.Route.Router.failed_subnets
    seeded.Route.Router.failed_subnets;
  let m1 = Route.Metrics.summarize plain
  and m2 = Route.Metrics.summarize seeded in
  checkb "identical metrics" true (m1 = m2)

let test_skeleton_mismatch_rejected () =
  let s = Route.Grid.skeleton (placement 64) in
  match Route.Grid.of_placement ~skeleton:s (placement 32) with
  | _ -> Alcotest.fail "mismatched skeleton accepted"
  | exception Invalid_argument _ -> ()

(* --- daemon loop --- *)

let serve_lines ?telemetry ?(on_reply = fun () -> ()) lines =
  let remaining = ref lines in
  let replies = ref [] in
  let stats =
    Serve.Daemon.serve ?telemetry
      (Serve.Cache.create ())
      ~next_line:(fun () ->
        match !remaining with
        | [] -> None
        | l :: rest ->
          remaining := rest;
          Some l)
      ~emit:(fun line ->
        replies := line :: !replies;
        on_reply ())
      ()
  in
  (stats, List.rev !replies)

let reply_id line =
  match Serve.Protocol.parse_reply line with
  | Ok r -> Option.value ~default:"?" r.Serve.Protocol.p_id
  | Error msg -> Alcotest.fail msg

let test_daemon_survives_bad_input () =
  let stats, replies =
    serve_lines
      [
        Serve.Protocol.encode_job (job "j1");
        "{\"truncated";
        {|{"schema":"vm1dp-jobs/1","id":"j2","design":"m0","scale":"x"}|};
        Serve.Protocol.encode_job (job "j3");
      ]
  in
  check "all lines answered" 4 (List.length replies);
  check "jobs" 4 stats.Serve.Daemon.jobs;
  check "ok" 2 stats.Serve.Daemon.ok;
  check "errors" 2 stats.Serve.Daemon.errors;
  (* replies in request order, ids echoed where extractable *)
  checks "order" "j1,?,j2,j3"
    (String.concat "," (List.map reply_id replies))

let test_daemon_order_under_concurrency () =
  let ids = List.init 8 (fun i -> Printf.sprintf "k%d" i) in
  let _, replies = serve_lines (List.map (fun i -> Serve.Protocol.encode_job (job i)) ids) in
  checks "request order preserved" (String.concat "," ids)
    (String.concat "," (List.map reply_id replies))

let test_traced_job_carries_trace () =
  let j = { (job "t") with Serve.Protocol.want_trace = true } in
  let _, replies = serve_lines [ Serve.Protocol.encode_job j ] in
  match replies with
  | [ line ] ->
    checkb "reply has trace" true
      (match Obs.Json.parse line with
      | Ok json -> Obs.Json.member "trace" json <> None
      | Error _ -> false)
  | _ -> Alcotest.fail "expected one reply"

(* --- telemetry --- *)

(* The scrape-does-not-perturb invariant: serving a stream with full
   telemetry on (observability + windows + a metrics/health scrape after
   every reply) must produce result payloads byte-identical to a plain
   run with everything off. The byte-identity contract quantifies over
   the "result" member — latency fields are wall clock. *)
let result_members replies =
  List.map
    (fun line ->
      match Serve.Protocol.parse_reply line with
      | Ok r -> (
        match r.Serve.Protocol.p_result with
        | Some j -> Obs.Json.to_string j
        | None ->
          "err:" ^ Option.value ~default:"?" r.Serve.Protocol.p_error_code)
      | Error m -> Alcotest.fail m)
    replies

let telemetry_stream =
  List.map
    (fun i -> Serve.Protocol.encode_job (job (Printf.sprintf "s%d" i)))
    [ 0; 1; 2 ]
  @ [ "{\"truncated" ]

let test_scrape_does_not_perturb () =
  let _, plain = serve_lines telemetry_stream in
  Obs.reset ();
  Obs.set_enabled true;
  Obs.Window.set_enabled true;
  let tel = Serve.Telemetry.create () in
  let scrapes = ref [] in
  let _, scraped =
    serve_lines ~telemetry:tel
      ~on_reply:(fun () ->
        scrapes :=
          Serve.Telemetry.handle tel "health"
          :: Serve.Telemetry.handle tel "metrics"
          :: !scrapes)
      telemetry_stream
  in
  Obs.Window.set_enabled false;
  Obs.set_enabled false;
  Obs.reset ();
  checkb "replies byte-identical with scraping on" true
    (result_members plain = result_members scraped);
  check "scraped after every reply" (2 * List.length plain)
    (List.length !scrapes);
  (* every scrape document carries a registered schema tag *)
  List.iter
    (fun doc ->
      match Obs.Json.member "schema" doc with
      | Some (Obs.Json.Str s) ->
        checkb "schema registered" true (Obs.Schemas.of_string s <> None)
      | _ -> Alcotest.fail "scrape document without a schema tag")
    !scrapes

let test_jobs_ring_and_joblog_fields () =
  Obs.reset ();
  Obs.set_enabled true;
  let tel = Serve.Telemetry.create ~ring_capacity:3 () in
  let _, _ = serve_lines ~telemetry:tel telemetry_stream in
  Obs.set_enabled false;
  Obs.reset ();
  match Serve.Telemetry.handle tel "jobs" with
  | Obs.Json.Obj _ as doc ->
    checkb "joblog schema" true
      (Obs.Json.member "schema" doc
      = Some (Obs.Json.Str Obs.Schemas.joblog));
    (* 4 replies through a capacity-3 ring: the oldest evicted *)
    checkb "ring capped" true
      (Obs.Json.member "count" doc = Some (Obs.Json.Int 3));
    (match Obs.Json.member "recent" doc with
    | Some (Obs.Json.List records) ->
      let field k r =
        match Obs.Json.member k r with
        | Some (Obs.Json.Str s) -> s
        | Some Obs.Json.Null -> "null"
        | _ -> "?"
      in
      checkb "oldest first after eviction" true
        (List.map (field "id") records = [ "s1"; "s2"; "null" ]);
      checkb "statuses" true
        (List.map (field "status") records = [ "ok"; "ok"; "error" ]);
      let last = List.nth records 2 in
      checks "error class recorded" "parse_error" (field "error_code" last);
      (* wall-clock spans are present but never asserted on: the
         deterministic fields are the contract, times are banded out *)
      List.iter
        (fun r ->
          checkb "queue span present" true
            (Obs.Json.member "queue_ms" r <> None);
          checkb "execute span present" true
            (Obs.Json.member "execute_ms" r <> None))
        records
    | _ -> Alcotest.fail "jobs reply without records")
  | _ -> Alcotest.fail "jobs reply not an object"

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "job roundtrip" `Quick test_job_roundtrip;
          Alcotest.test_case "defaults" `Quick test_defaults_applied;
          Alcotest.test_case "truncated line" `Quick test_truncated_line;
          Alcotest.test_case "not an object" `Quick test_not_an_object;
          Alcotest.test_case "unknown schema" `Quick test_unknown_schema;
          Alcotest.test_case "bad fields" `Quick test_bad_fields;
          Alcotest.test_case "external field rules" `Quick
            test_external_field_rules;
          Alcotest.test_case "external job roundtrip" `Quick
            test_external_job_roundtrip;
          Alcotest.test_case "error reply" `Quick test_error_reply_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "cold=warm bytes" `Quick test_cold_warm_identical;
          Alcotest.test_case "stats" `Quick test_cache_stats_count;
        ] );
      ( "external",
        [
          Alcotest.test_case "inline def" `Quick test_external_inline_job;
          Alcotest.test_case "cache hit" `Quick test_external_job_cache_hit;
          Alcotest.test_case "def_path" `Quick test_external_path_job;
          Alcotest.test_case "bad def rejected" `Quick
            test_external_rejects_bad_def;
        ] );
      ( "skeleton",
        [
          Alcotest.test_case "route equivalence" `Quick test_skeleton_equivalent;
          Alcotest.test_case "key mismatch" `Quick test_skeleton_mismatch_rejected;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "survives bad input" `Quick
            test_daemon_survives_bad_input;
          Alcotest.test_case "reply order" `Quick
            test_daemon_order_under_concurrency;
          Alcotest.test_case "traced job" `Quick test_traced_job_carries_trace;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "scrape does not perturb" `Quick
            test_scrape_does_not_perturb;
          Alcotest.test_case "jobs ring and joblog fields" `Quick
            test_jobs_ring_and_joblog_fields;
        ] );
    ]
