(* Integration tests: the full generate -> place -> route -> optimise ->
   re-route pipeline, reproducing the qualitative shape of the paper's
   Table 2 on small designs. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let comparison arch =
  Report.Flow.run_comparison ~scale:24 Netlist.Designs.Aes arch

let closed = lazy (comparison Pdk.Cell_arch.Closed_m1)
let opened = lazy (comparison Pdk.Cell_arch.Open_m1)

let test_closed_dm1_increases () =
  let c = Lazy.force closed in
  checkb "dM1 increases substantially" true
    (c.Report.Flow.final.Report.Flow.dm1
     > c.Report.Flow.init.Report.Flow.dm1)

let test_closed_rwl_not_worse () =
  let c = Lazy.force closed in
  checkb "routed wirelength reduced" true
    (c.Report.Flow.final.Report.Flow.rwl_um
     <= c.Report.Flow.init.Report.Flow.rwl_um *. 1.001)

let test_closed_no_drv_regression () =
  let c = Lazy.force closed in
  checkb "DRVs do not increase" true
    (c.Report.Flow.final.Report.Flow.drvs <= c.Report.Flow.init.Report.Flow.drvs)

let test_closed_wns_clean () =
  let c = Lazy.force closed in
  checkb "initial timing met" true (c.Report.Flow.init.Report.Flow.wns_ns = 0.0);
  checkb "no adverse timing impact (paper's claim)" true
    (c.Report.Flow.final.Report.Flow.wns_ns >= -0.01)

let test_closed_power_not_worse () =
  let c = Lazy.force closed in
  checkb "power does not increase measurably" true
    (c.Report.Flow.final.Report.Flow.power_mw
     <= c.Report.Flow.init.Report.Flow.power_mw *. 1.005)

let test_open_dm1_increases_less () =
  (* the paper's key contrast: OpenM1 starts with far more dM1 and gains
     relatively less from the optimisation than ClosedM1 *)
  let c = Lazy.force closed and o = Lazy.force opened in
  checkb "openm1 improves" true
    (o.Report.Flow.final.Report.Flow.dm1 >= o.Report.Flow.init.Report.Flow.dm1);
  let ratio (x : Report.Flow.comparison) =
    float_of_int x.Report.Flow.final.Report.Flow.dm1
    /. float_of_int (max 1 x.Report.Flow.init.Report.Flow.dm1)
  in
  checkb "closed gains relatively more dM1 than open" true (ratio c > ratio o);
  checkb "open starts with more dM1 per instance" true
    (float_of_int o.Report.Flow.init.Report.Flow.dm1
     > float_of_int c.Report.Flow.init.Report.Flow.dm1)

let test_alignments_track_dm1 () =
  (* placement-level alignments are potential dM1: after optimisation the
     router should realise a comparable count *)
  let c = Lazy.force closed in
  checkb "final alignments positive" true
    (c.Report.Flow.final.Report.Flow.alignments > 0);
  checkb "router realises alignments" true
    (c.Report.Flow.final.Report.Flow.dm1
     >= c.Report.Flow.final.Report.Flow.alignments / 3)

let test_def_roundtrip_through_flow () =
  let p = Report.Flow.prepare ~scale:24 Netlist.Designs.M0 Pdk.Cell_arch.Closed_m1 in
  let params = Vm1.Params.default p.Place.Placement.tech in
  ignore (Vm1.Vm1_opt.run params p);
  let text = Io.Def.write p.design (Place.Placement.to_def p) in
  let d2, def2 =
    match Io.Def.read p.design.Netlist.Design.lib text with
    | Ok v -> v
    | Error msg -> Alcotest.failf "re-read of emitted DEF failed: %s" msg
  in
  let q = Place.Placement.of_def d2 def2 in
  Alcotest.(check (list string)) "round-tripped placement legal" []
    (Place.Legalize.check q);
  check "hpwl preserved" (Place.Hpwl.total p) (Place.Hpwl.total q)

let test_conv12_flow_runs () =
  (* the conventional architecture has no inter-row M1 at all; the flow
     must still run and find zero dM1 *)
  let p = Report.Flow.prepare ~scale:32 Netlist.Designs.M0 Pdk.Cell_arch.Conventional12 in
  let params = Vm1.Params.default p.Place.Placement.tech in
  let init, _ = Report.Flow.evaluate params p in
  check "no inter-row dM1 in conv12" 0 init.Report.Flow.dm1

let test_comparison_determinism () =
  let a = comparison Pdk.Cell_arch.Closed_m1 in
  let b = Lazy.force closed in
  check "same final dm1" b.Report.Flow.final.Report.Flow.dm1
    a.Report.Flow.final.Report.Flow.dm1

let () =
  Alcotest.run "flow"
    [
      ( "closedm1",
        [
          Alcotest.test_case "dm1 increases" `Quick test_closed_dm1_increases;
          Alcotest.test_case "rwl not worse" `Quick test_closed_rwl_not_worse;
          Alcotest.test_case "drv not worse" `Quick test_closed_no_drv_regression;
          Alcotest.test_case "wns clean" `Quick test_closed_wns_clean;
          Alcotest.test_case "power not worse" `Quick test_closed_power_not_worse;
        ] );
      ( "openm1",
        [
          Alcotest.test_case "contrast with closed" `Quick test_open_dm1_increases_less;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "alignments realised" `Quick test_alignments_track_dm1;
          Alcotest.test_case "def roundtrip" `Quick test_def_roundtrip_through_flow;
          Alcotest.test_case "conv12 runs" `Quick test_conv12_flow_runs;
          Alcotest.test_case "deterministic" `Quick test_comparison_determinism;
        ] );
    ]
